// Fabric wiring: adapters that run the normal page pipeline under the
// distributed dispatcher (internal/fabric). The coordinator side builds
// the site list and batch plan from the same synthetic-world parameters
// a local crawl uses; the worker side rebuilds the whole measurement
// stack (world, web server, labeler, recorder) from the CrawlConfig the
// coordinator broadcasts, so every worker crawls an identical world and
// a site's spool lines are byte-identical no matter which worker — or
// how many workers — produced them (DESIGN.md §12).

package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/browser"
	"repro/internal/colstore"
	"repro/internal/crawler"
	"repro/internal/dispatch"
	"repro/internal/fabric"
	"repro/internal/fabric/wire"
	"repro/internal/faultnet"
	"repro/internal/filterlist"
	"repro/internal/labeler"
	"repro/internal/webgen"
	"repro/internal/webserver"
)

// FabricCrawlConfig renders a crawl spec as the wire config the
// coordinator broadcasts to workers.
func FabricCrawlConfig(opts Options, spec CrawlSpec) wire.CrawlConfig {
	opts = withDefaults(opts)
	return wire.CrawlConfig{
		Name:           spec.Name,
		Era:            spec.Era.String(),
		CrawlIndex:     spec.CrawlIndex,
		BrowserVersion: spec.BrowserVersion,
		Seed:           opts.Seed,
		NumPublishers:  opts.NumPublishers,
		PagesPerSite:   opts.PagesPerSite,
	}
}

// FabricDatasetMeta names the merged dataset of a fabric crawl; it
// matches what the local dispatch path stamps.
func FabricDatasetMeta(spec CrawlSpec) analysis.DatasetMeta {
	return analysis.DatasetMeta{Name: spec.Name, Era: spec.Era.String(), CrawlIndex: spec.CrawlIndex}
}

// FabricSites derives the crawl target list for a spec. The coordinator
// only needs the publisher roster — it never serves or crawls the world
// itself; workers rebuild the full world from the same seed.
func FabricSites(opts Options, spec CrawlSpec) []crawler.Site {
	opts = withDefaults(opts)
	world := webgen.NewWorld(webgen.Config{
		Seed:          opts.Seed,
		NumPublishers: opts.NumPublishers,
		Era:           spec.Era,
		CrawlIndex:    spec.CrawlIndex,
	})
	sites := make([]crawler.Site, 0, len(world.Publishers))
	for _, p := range world.Publishers {
		sites = append(sites, crawler.Site{Domain: p.Domain, Rank: p.Rank})
	}
	return sites
}

// FabricRunner executes leased batches on a worker: it owns a synthetic
// world served over an in-process web server plus the labeler/recorder
// stack, and crawls each batch's sites with per-site seeded browsers —
// the same determinism regime as the local dispatch path.
type FabricRunner struct {
	crawl    wire.CrawlConfig
	workers  int
	server   *webserver.Server
	recorder *analysis.Recorder
	seed     int64 // crawl seed (world seed + crawl index)
}

// NewFabricRunner rebuilds the measurement stack from a coordinator's
// crawl config.
func NewFabricRunner(cfg wire.CrawlConfig, workers int) (*FabricRunner, error) {
	var era webgen.Era
	switch cfg.Era {
	case webgen.EraPrePatch.String():
		era = webgen.EraPrePatch
	case webgen.EraPostPatch.String():
		era = webgen.EraPostPatch
	default:
		return nil, fmt.Errorf("core: fabric crawl config has unknown era %q", cfg.Era)
	}
	if workers <= 0 {
		workers = 8
	}
	world := webgen.NewWorld(webgen.Config{
		Seed:          cfg.Seed,
		NumPublishers: cfg.NumPublishers,
		Era:           era,
		CrawlIndex:    cfg.CrawlIndex,
	})
	server, err := webserver.StartWith(world, webserver.Options{})
	if err != nil {
		return nil, fmt.Errorf("core: start server: %w", err)
	}
	easylist := filterlist.Parse("easylist", world.EasyListText())
	easyprivacy := filterlist.Parse("easyprivacy", world.EasyPrivacyText())
	lab := labeler.New(easylist, easyprivacy)
	lab.SetCDNMap(world.CloudfrontMap())
	return &FabricRunner{
		crawl:    cfg,
		workers:  workers,
		server:   server,
		recorder: analysis.NewRecorder(lab),
		seed:     cfg.Seed + int64(cfg.CrawlIndex),
	}, nil
}

// Close shuts the runner's in-process web server down.
func (r *FabricRunner) Close() error {
	r.server.Close()
	return nil
}

// batchSource feeds one batch's sites to the crawl worker pool and
// collects permanent site failures.
type batchSource struct {
	mu     sync.Mutex
	sites  []crawler.Site
	next   int
	failed map[string]string
}

func (s *batchSource) Next(ctx context.Context) (crawler.Site, bool) {
	if ctx.Err() != nil {
		return crawler.Site{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.next >= len(s.sites) {
		return crawler.Site{}, false
	}
	site := s.sites[s.next]
	s.next++
	return site, true
}

func (s *batchSource) Done(site crawler.Site, pages int, err error) {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed == nil {
		s.failed = map[string]string{}
	}
	s.failed[site.Domain] = err.Error()
}

// RunBatch crawls every site in the batch, streaming each page record
// as a pre-encoded spool line. Browsers are seeded per site
// (crawler.SiteSeed), so the lines are independent of batch membership,
// worker identity, and crawl order — re-running a batch anywhere
// reproduces them byte for byte. There is no per-site retry here:
// retries happen at batch granularity through the coordinator's lease
// attempts.
func (r *FabricRunner) RunBatch(ctx context.Context, batch wire.Batch, emit func(site string, line []byte) error) (int, map[string]string, error) {
	sites := make([]crawler.Site, len(batch.Sites))
	for i, s := range batch.Sites {
		sites[i] = crawler.Site{Domain: s.Domain, Rank: s.Rank}
	}
	src := &batchSource{sites: sites}
	var pages atomic.Int64
	cfg := crawler.Config{
		Workers:      r.workers,
		PagesPerSite: r.crawl.PagesPerSite,
		Seed:         r.seed,
		SiteBrowser: func(site crawler.Site) *browser.Browser {
			return browser.New(browser.Config{
				Version:    r.crawl.BrowserVersion,
				Seed:       crawler.SiteSeed(r.seed, site.Domain),
				HTTPClient: r.server.Client(),
				ResolveWS:  r.server.Resolver(),
			})
		},
		OnPage: func(site crawler.Site, pageURL string, res *browser.PageResult) {
			rec, err := r.recorder.RecordPage(site, pageURL, res)
			if err != nil {
				src.Done(site, 0, err)
				return
			}
			var buf bytes.Buffer
			if err := analysis.EncodeSpoolRecord(&buf, rec); err != nil {
				src.Done(site, 0, err)
				return
			}
			line := bytes.TrimSuffix(buf.Bytes(), []byte("\n"))
			if err := emit(site.Domain, line); err != nil {
				return // emit cancels the batch context itself
			}
			pages.Add(1)
		},
	}
	if _, err := crawler.CrawlSource(ctx, src, cfg); err != nil {
		return int(pages.Load()), nil, err
	}
	src.mu.Lock()
	failed := src.failed
	src.mu.Unlock()
	return int(pages.Load()), failed, nil
}

// FabricCoordinatorOptions parameterizes StartFabricCoordinator.
type FabricCoordinatorOptions struct {
	// Addr is the listen address (":0" picks a port).
	Addr string
	// BatchSize is sites per leased batch (default 16).
	BatchSize int
	// NumShards is the spool shard count (default 8).
	NumShards int
	// LeaseTTL bounds unheartbeated batch leases (default 30s).
	LeaseTTL time.Duration
	// MaxAttempts is the per-batch attempt budget (default 3).
	MaxAttempts int
	// CheckpointPath / SpoolDir locate the coordinator's durable state.
	CheckpointPath string
	SpoolDir       string
	// Resume continues from CheckpointPath instead of starting fresh.
	Resume bool
	// Store, when set, receives every streamed page record as it
	// arrives and seals at checkpoint boundaries (see
	// fabric.CoordinatorConfig.Store). Open it with the crawl's
	// FabricDatasetMeta and a Resume flag matching this config's; the
	// caller keeps ownership and closes it after the coordinator.
	Store *colstore.Store
	// FaultProfile, when non-empty, degrades every worker link with the
	// named faultnet profile, keyed on FaultSeed.
	FaultProfile string
	FaultSeed    int64
	// Logf receives coordinator progress lines; nil means silent.
	Logf func(format string, args ...any)
}

// StartFabricCoordinator derives the site list for a crawl spec and
// starts a batch coordinator serving it.
func StartFabricCoordinator(opts Options, spec CrawlSpec, fo FabricCoordinatorOptions) (*fabric.Coordinator, error) {
	opts = withDefaults(opts)
	var fault faultnet.Profile
	if fo.FaultProfile != "" {
		p, ok := faultnet.ByName(fo.FaultProfile)
		if !ok {
			return nil, fmt.Errorf("core: unknown fault profile %q (have: %s)",
				fo.FaultProfile, strings.Join(faultnet.Names(), ", "))
		}
		fault = p
	}
	return fabric.StartCoordinator(fo.Addr, fabric.CoordinatorConfig{
		Crawl:          FabricCrawlConfig(opts, spec),
		Sites:          FabricSites(opts, spec),
		BatchSize:      fo.BatchSize,
		NumShards:      fo.NumShards,
		LeaseTTL:       fo.LeaseTTL,
		Retry:          dispatch.RetryPolicy{MaxAttempts: fo.MaxAttempts},
		CheckpointPath: fo.CheckpointPath,
		SpoolDir:       fo.SpoolDir,
		Resume:         fo.Resume,
		Store:          fo.Store,
		Fault:          fault,
		FaultSeed:      fo.FaultSeed,
		Logf:           fo.Logf,
	})
}

// FabricWorkerOptions parameterizes RunFabricWorker.
type FabricWorkerOptions struct {
	// Name identifies the worker in coordinator logs. Required.
	Name string
	// URL is the coordinator's ws:// endpoint. Required.
	URL string
	// Workers is the crawl parallelism inside this worker process.
	Workers int
	// Seed drives the worker's dial backoff and frame masking.
	Seed int64
	// DialRetry bounds reconnect attempts (zero value = defaults).
	DialRetry dispatch.RetryPolicy
	// FaultProfile, when non-empty, degrades this worker's coordinator
	// link with the named faultnet profile, keyed on FaultSeed.
	FaultProfile string
	FaultSeed    int64
	// Logf receives worker progress lines; nil means silent.
	Logf func(format string, args ...any)
}

// RunFabricWorker joins a coordinator and executes leased batches with
// the full page pipeline until the crawl drains or ctx ends.
func RunFabricWorker(ctx context.Context, wo FabricWorkerOptions) error {
	var wrap func(net.Conn) net.Conn
	if wo.FaultProfile != "" {
		p, ok := faultnet.ByName(wo.FaultProfile)
		if !ok {
			return fmt.Errorf("core: unknown fault profile %q (have: %s)",
				wo.FaultProfile, strings.Join(faultnet.Names(), ", "))
		}
		var dials atomic.Int64
		wrap = func(nc net.Conn) net.Conn {
			// A fresh schedule per dial: a reconnect must not replay the
			// exact fault position that killed the previous link.
			return faultnet.WrapConn(nc, p, wo.FaultSeed+dials.Add(1))
		}
	}
	return fabric.RunWorker(ctx, fabric.WorkerConfig{
		Name: wo.Name,
		URL:  wo.URL,
		NewRunner: func(cfg wire.CrawlConfig) (fabric.BatchRunner, error) {
			return NewFabricRunner(cfg, wo.Workers)
		},
		Seed:      wo.Seed,
		DialRetry: wo.DialRetry,
		WrapConn:  wrap,
		Logf:      wo.Logf,
	})
}
