package core

import (
	"context"
	"path/filepath"
	"runtime"
	"testing"
)

// The bench-crawl world: one pinned config, small enough to iterate in
// CI, big enough that every pipeline stage (fetch, parse, script, ws,
// tree, label, spool encode, merge) does real work. BENCH_crawl.json
// records the accepted baseline; see Makefile bench-crawl.
const (
	benchCrawlSeed    = 20180411
	benchCrawlSites   = 24
	benchCrawlPages   = 6
	benchCrawlWorkers = 4
)

func benchCrawlOptions(stateDir string, reference bool) Options {
	return Options{
		Seed:              benchCrawlSeed,
		NumPublishers:     benchCrawlSites,
		Workers:           benchCrawlWorkers,
		PagesPerSite:      benchCrawlPages,
		ReferencePipeline: reference,
		Dispatch: &DispatchOptions{
			StateDir: stateDir,
		},
	}
}

// benchCrawl runs the full per-page path end-to-end — page loads,
// WebSocket sessions, inclusion trees, labeling, sharded spooling,
// merge — and reports pages/sec plus per-page cost metrics.
func benchCrawl(b *testing.B, reference bool) {
	spec := CrawlSpec{Name: "bench", Era: 0, CrawlIndex: 0, BrowserVersion: 57}
	ctx := context.Background()
	var pages int64
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := benchCrawlOptions(filepath.Join(b.TempDir(), "state"), reference)
		res, err := RunCrawl(ctx, opts, spec)
		if err != nil {
			b.Fatal(err)
		}
		pages += res.Stats.Pages
	}
	b.StopTimer()
	runtime.ReadMemStats(&ms1)
	if pages == 0 {
		b.Fatal("bench crawl loaded no pages")
	}
	elapsed := b.Elapsed()
	b.ReportMetric(float64(pages)/elapsed.Seconds()/float64(b.N)*float64(b.N), "pages/sec")
	b.ReportMetric(float64(elapsed.Nanoseconds())/float64(pages), "ns/page")
	b.ReportMetric(float64(ms1.TotalAlloc-ms0.TotalAlloc)/float64(pages), "B/page")
	b.ReportMetric(float64(ms1.Mallocs-ms0.Mallocs)/float64(pages), "allocs/page")
}

// BenchmarkCrawlPipeline is the shipping configuration: in-process
// fetch plane, scratch/pool reuse at every layer, group-committed
// spool, live folding.
func BenchmarkCrawlPipeline(b *testing.B) { benchCrawl(b, false) }

// BenchmarkCrawlPipelineReference is the retained seed path — the
// pre-optimization pipeline the differential test compares against.
// The gap between the two is the PR's claimed win; if it collapses,
// an optimization has quietly stopped engaging.
func BenchmarkCrawlPipelineReference(b *testing.B) { benchCrawl(b, true) }
