package core

import (
	"bytes"
	"testing"

	"repro/internal/filterlist"
)

// TestIndexedEngineMatchesReferenceDataset is the dataset-level proof
// that the tokenized reverse-index match engine is a pure optimization:
// a full metrics-enabled crawl under the indexed engine (with its
// decision cache live) produces byte-identical study JSON to the same
// crawl forced through the retained reference oracle — the seed
// implementation's matching semantics. Together with filterlist's
// differential property test this pins "new engine ≡ seed" end to end.
func TestIndexedEngineMatchesReferenceDataset(t *testing.T) {
	indexed := datasetBytes(t, t.TempDir())

	filterlist.SetReferenceMode(true)
	defer filterlist.SetReferenceMode(false)
	reference := datasetBytes(t, t.TempDir())

	if !bytes.Equal(indexed, reference) {
		t.Fatalf("indexed engine changed the dataset: %d bytes vs %d bytes under the reference oracle",
			len(indexed), len(reference))
	}
}
