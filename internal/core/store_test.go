package core

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/colstore"
	"repro/internal/webgen"
)

// renderAllTables renders Tables 1-5 — the paper's full tabular
// evaluation — from one dataset.
func renderAllTables(ds *analysis.Dataset) string {
	var b bytes.Buffer
	b.WriteString(analysis.RenderTable1(analysis.Table1(ds)))
	b.WriteString(analysis.RenderTable2(analysis.Table2(10, ds)))
	b.WriteString(analysis.RenderTable3(analysis.Table3(10, ds)))
	b.WriteString(analysis.RenderTable4(analysis.Table4(10, ds)))
	b.WriteString(analysis.RenderTable5(analysis.Table5(ds)))
	return b.String()
}

func storeDatasetBytes(t *testing.T, ds *analysis.Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ds.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStoreDifferential runs the pinned bench-crawl world through both
// dataset paths — end-of-run spool merge vs streaming columnar store —
// and requires byte-identical datasets and byte-identical rendered
// Table 1-5 output, from the live run and from a cold read-only open of
// the sealed segments.
func TestStoreDifferential(t *testing.T) {
	spec := CrawlSpec{Name: "bench", Era: webgen.EraPrePatch, CrawlIndex: 0, BrowserVersion: 57}
	ctx := context.Background()

	mergeOpts := benchCrawlOptions(filepath.Join(t.TempDir(), "state"), false)
	mergeRes, err := RunCrawl(ctx, mergeOpts, spec)
	if err != nil {
		t.Fatal(err)
	}
	oracle := storeDatasetBytes(t, mergeRes.Dataset)
	oracleTables := renderAllTables(mergeRes.Dataset)

	stateDir := filepath.Join(t.TempDir(), "state")
	storeOpts := benchCrawlOptions(stateDir, false)
	storeOpts.Store = true
	storeRes, err := RunCrawl(ctx, storeOpts, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(storeDatasetBytes(t, storeRes.Dataset), oracle) {
		t.Error("store-derived dataset differs from merge-derived dataset")
	}
	if got := renderAllTables(storeRes.Dataset); got != oracleTables {
		t.Errorf("store-derived tables differ:\n--- store ---\n%s\n--- merge ---\n%s", got, oracleTables)
	}

	// RunCrawl closed (sealed) the store; the on-disk segments alone must
	// reproduce the same dataset and tables for cmd/wsquery.
	ro, err := colstore.OpenRead(filepath.Join(stateDir, "store-crawl0"))
	if err != nil {
		t.Fatal(err)
	}
	roDS, _ := ro.Dataset()
	if !bytes.Equal(storeDatasetBytes(t, roDS), oracle) {
		t.Error("sealed on-disk store differs from merge-derived dataset")
	}
	if got := renderAllTables(roDS); got != oracleTables {
		t.Error("sealed on-disk store renders different tables")
	}
}

// TestStoreRequiresDispatch pins the Options contract: the store rides
// the dispatch path's checkpoint/seal boundary, so enabling it without
// Dispatch is a configuration error, not a silent fallback.
func TestStoreRequiresDispatch(t *testing.T) {
	_, err := RunCrawl(context.Background(), Options{
		Seed: 1, NumPublishers: 2, Workers: 1, PagesPerSite: 1, Store: true,
	}, CrawlSpec{Name: "bad", Era: webgen.EraPrePatch, BrowserVersion: 57})
	if err == nil {
		t.Fatal("Store without Dispatch accepted")
	}
}

// TestFabricStoreDifferential streams the pinned bench-crawl world
// through a coordinator with two real-pipeline workers: the store the
// coordinator fed record-by-record must match the coordinator's own
// spool merge byte for byte, live and after a cold read-only open.
func TestFabricStoreDifferential(t *testing.T) {
	opts := Options{
		Seed:          benchCrawlSeed,
		NumPublishers: benchCrawlSites,
		Workers:       benchCrawlWorkers,
		PagesPerSite:  benchCrawlPages,
	}
	spec := CrawlSpec{Name: "bench", Era: webgen.EraPrePatch, CrawlIndex: 0, BrowserVersion: 57}
	dir := t.TempDir()

	st, err := colstore.Open(colstore.Config{
		Dir:       filepath.Join(dir, "store"),
		NumShards: 4,
		Meta:      FabricDatasetMeta(spec),
	})
	if err != nil {
		t.Fatal(err)
	}
	coord, err := StartFabricCoordinator(opts, spec, FabricCoordinatorOptions{
		Addr:           "127.0.0.1:0",
		BatchSize:      4,
		NumShards:      4,
		CheckpointPath: filepath.Join(dir, "checkpoint.json"),
		SpoolDir:       filepath.Join(dir, "spool"),
		Store:          st,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = RunFabricWorker(ctx, FabricWorkerOptions{
				Name:    fmt.Sprintf("w%d", i),
				URL:     coord.URL(),
				Workers: 2,
				Seed:    int64(i + 1),
			})
		}(i)
	}
	if err := coord.Wait(ctx); err != nil {
		t.Fatalf("coordinator never drained: %v", err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("worker %d: %v", i, err)
		}
	}

	// Finalize writes the last checkpoint (sealing the store) and merges
	// the spool — the oracle the streamed store must reproduce.
	mergeDS, mergeStats, err := coord.Finalize(FabricDatasetMeta(spec))
	if err != nil {
		t.Fatal(err)
	}
	oracle := storeDatasetBytes(t, mergeDS)
	storeDS, storeStats := st.Dataset()
	if !bytes.Equal(storeDatasetBytes(t, storeDS), oracle) {
		t.Error("fabric store dataset differs from coordinator merge")
	}
	if storeStats.Pages != mergeStats.Pages {
		t.Errorf("store folded %d pages, merge saw %d", storeStats.Pages, mergeStats.Pages)
	}
	if got, want := renderAllTables(storeDS), renderAllTables(mergeDS); got != want {
		t.Error("fabric store renders different tables than the merge")
	}
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	ro, err := colstore.OpenRead(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	roDS, _ := ro.Dataset()
	if !bytes.Equal(storeDatasetBytes(t, roDS), oracle) {
		t.Error("sealed fabric store differs from coordinator merge")
	}
}
