package webserver

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/webgen"
	"repro/internal/wsproto"
)

func startTestServer(t *testing.T) *Server {
	t.Helper()
	w := webgen.NewWorld(webgen.Config{Seed: 21, NumPublishers: 50, Era: webgen.EraPrePatch})
	s, err := Start(w)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func get(t *testing.T, s *Server, url string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := s.Client().Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func TestServeHomepage(t *testing.T) {
	s := startTestServer(t)
	pub := s.World.Publishers[0]
	resp, body := get(t, s, "http://"+pub.Domain+"/")
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if !strings.Contains(resp.Header.Get("Content-Type"), "text/html") {
		t.Errorf("content type = %q", resp.Header.Get("Content-Type"))
	}
	if !strings.Contains(body, pub.Domain) {
		t.Error("homepage does not mention its own domain")
	}
	if s.Stats.HTTPRequests.Load() != 1 {
		t.Errorf("request count = %d", s.Stats.HTTPRequests.Load())
	}
}

func TestVirtualHosting(t *testing.T) {
	s := startTestServer(t)
	a := s.World.Publishers[0].Domain
	b := s.World.Publishers[1].Domain
	_, bodyA := get(t, s, "http://"+a+"/")
	_, bodyB := get(t, s, "http://"+b+"/")
	if bodyA == bodyB {
		t.Error("different virtual hosts served identical pages")
	}
	resp, _ := get(t, s, "http://not-in-world.example/")
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("unknown host status = %d", resp.StatusCode)
	}
}

func TestServeCompanyScript(t *testing.T) {
	s := startTestServer(t)
	pub := s.World.Publishers[0]
	if len(pub.Services) == 0 {
		t.Skip("publisher has no services")
	}
	// Any company script host works through the resolver.
	c := pub.Services[0]
	resp, body := get(t, s, "http://cdn."+c.Domain+"/w.js?pub="+pub.Domain+"&pg=0")
	if resp.StatusCode != 200 {
		t.Fatalf("script status = %d", resp.StatusCode)
	}
	if !strings.Contains(resp.Header.Get("Content-Type"), "javascript") {
		t.Errorf("script content type = %q", resp.Header.Get("Content-Type"))
	}
	if body == "" {
		t.Error("empty script body")
	}
}

func TestWebSocketEndToEnd(t *testing.T) {
	s := startTestServer(t)
	d := wsproto.Dialer{ResolveAddr: s.Resolver()}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	conn, _, err := d.Dial(ctx, "ws://intercom.io/ws?sid=t1&n=2")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if err := conn.WriteText("ua=Mozilla/5.0 (test)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		op, msg, err := conn.ReadMessage()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if op != wsproto.OpText || len(msg) == 0 {
			t.Errorf("message %d: op=%v len=%d", i, op, len(msg))
		}
	}
	if s.Stats.WSHandshakes.Load() != 1 {
		t.Errorf("handshakes = %d", s.Stats.WSHandshakes.Load())
	}
	if s.Stats.WSMessagesSent.Load() != 2 {
		t.Errorf("ws messages sent = %d", s.Stats.WSMessagesSent.Load())
	}
}

func TestWebSocketZeroResponses(t *testing.T) {
	s := startTestServer(t)
	d := wsproto.Dialer{ResolveAddr: s.Resolver()}
	conn, _, err := d.Dial(context.Background(), "ws://intercom.io/ws?sid=t2&n=0")
	if err != nil {
		t.Fatal(err)
	}
	// Client sends, server stays silent, client closes: no deadlock.
	if err := conn.WriteText("cookie=uid=1"); err != nil {
		t.Fatal(err)
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWebSocketUnknownEndpoint(t *testing.T) {
	s := startTestServer(t)
	d := wsproto.Dialer{ResolveAddr: s.Resolver()}
	if _, _, err := d.Dial(context.Background(), "ws://intercom.io/not-an-endpoint"); err == nil {
		t.Error("dial to unknown endpoint succeeded")
	}
	if _, _, err := d.Dial(context.Background(), "ws://feed03-rt.net/stream?sid=x&n=1"); err != nil {
		t.Errorf("feed endpoint dial failed: %v", err)
	}
}

func TestConcurrentMixedLoad(t *testing.T) {
	s := startTestServer(t)
	d := wsproto.Dialer{ResolveAddr: s.Resolver()}
	client := s.Client()
	errc := make(chan error, 20)
	for i := 0; i < 10; i++ {
		go func(i int) {
			pub := s.World.Publishers[i%len(s.World.Publishers)]
			resp, err := client.Get("http://" + pub.Domain + "/")
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			errc <- err
		}(i)
		go func(i int) {
			conn, _, err := d.Dial(context.Background(), "ws://zopim.com/ws?sid=c&n=1")
			if err == nil {
				_, _, rerr := conn.ReadMessage()
				conn.Close()
				err = rerr
			}
			errc <- err
		}(i)
	}
	for i := 0; i < 20; i++ {
		if err := <-errc; err != nil {
			t.Errorf("concurrent op %d: %v", i, err)
		}
	}
}

func TestCloseDropsSockets(t *testing.T) {
	s := startTestServer(t)
	d := wsproto.Dialer{ResolveAddr: s.Resolver()}
	conn, _, err := d.Dial(context.Background(), "ws://pusher.com/ws?sid=z&n=0")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	if _, _, err := conn.ReadMessage(); err == nil {
		t.Error("socket still alive after server close")
	}
}

func TestHostOnly(t *testing.T) {
	tests := []struct{ in, want string }{
		{"example.com:8080", "example.com"},
		{"example.com", "example.com"},
		{"[::1]:80", "[::1]"},
	}
	for _, tc := range tests {
		if got := hostOnly(tc.in); got != tc.want {
			t.Errorf("hostOnly(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
