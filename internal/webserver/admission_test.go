package webserver

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/wsproto"
)

// echoDialer returns a seeded dialer pointed at the server's real
// address (the echo endpoint is served on every host, so no virtual
// hosting is needed).
func echoDialer(seed int64) wsproto.Dialer {
	return wsproto.Dialer{Rand: rand.New(rand.NewSource(seed))}
}

func TestEchoEndpointWorldless(t *testing.T) {
	s, err := StartWith(nil, Options{EnableEcho: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	d := echoDialer(1)
	conn, _, err := d.Dial(context.Background(), "ws://"+s.Addr()+EchoPath)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	for i, tc := range []struct {
		op      wsproto.Opcode
		payload []byte
	}{
		{wsproto.OpText, []byte("hello echo")},
		{wsproto.OpBinary, []byte{0, 1, 2, 0xFF, 0xFE}},
		{wsproto.OpText, bytes.Repeat([]byte("x"), 9000)},
	} {
		if err := conn.WriteMessage(tc.op, tc.payload); err != nil {
			t.Fatalf("msg %d write: %v", i, err)
		}
		op, msg, err := conn.ReadMessage()
		if err != nil {
			t.Fatalf("msg %d read: %v", i, err)
		}
		if op != tc.op || !bytes.Equal(msg, tc.payload) {
			t.Fatalf("msg %d: echoed (%v, %d bytes), want (%v, %d bytes)",
				i, op, len(msg), tc.op, len(tc.payload))
		}
	}
	if got := s.Stats.WSMessagesRecv.Load(); got != 3 {
		t.Errorf("WSMessagesRecv = %d, want 3", got)
	}
	if got := s.Stats.WSMessagesSent.Load(); got != 3 {
		t.Errorf("WSMessagesSent = %d, want 3", got)
	}
}

func TestEchoDisabledByDefault(t *testing.T) {
	s, err := StartWith(nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	d := echoDialer(2)
	if _, _, err := d.Dial(context.Background(), "ws://"+s.Addr()+EchoPath); err == nil {
		t.Fatal("echo endpoint served without EnableEcho")
	}
}

func TestMaxConnsShedsUpgrades(t *testing.T) {
	s, err := StartWith(nil, Options{EnableEcho: true, MaxConns: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	url := "ws://" + s.Addr() + EchoPath

	d := echoDialer(3)
	var conns []*wsproto.Conn
	for i := 0; i < 2; i++ {
		conn, _, err := d.Dial(context.Background(), url)
		if err != nil {
			t.Fatalf("conn %d within cap: %v", i, err)
		}
		conns = append(conns, conn)
	}
	// Third connection is over the cap: the upgrade must be refused.
	if conn, _, err := d.Dial(context.Background(), url); err == nil {
		conn.Close()
		t.Fatal("third upgrade admitted past MaxConns=2")
	}
	if got := s.Stats.WSShed.Load(); got != 1 {
		t.Errorf("WSShed = %d, want 1", got)
	}

	// Releasing a slot re-opens admission. The slot frees when the
	// serve loop unwinds, which races the close frame round trip, so
	// poll briefly.
	conns[0].Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		conn, _, err := d.Dial(context.Background(), url)
		if err == nil {
			conns[0] = conn
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed after close: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, c := range conns {
		c.Close()
	}
}

func TestMaxAcceptedShedsTCP(t *testing.T) {
	s, err := StartWith(nil, Options{EnableEcho: true, MaxAccepted: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	url := "ws://" + s.Addr() + EchoPath

	d := echoDialer(4)
	conn, _, err := d.Dial(context.Background(), url)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// The lone accept slot is held by the live socket: the next TCP
	// connection is closed before HTTP, so the handshake read fails.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if c2, _, err := d.Dial(ctx, url); err == nil {
		c2.Close()
		t.Fatal("second TCP conn admitted past MaxAccepted=1")
	}
	if got := s.Stats.AcceptShed.Load(); got < 1 {
		t.Errorf("AcceptShed = %d, want >= 1", got)
	}

	// The admitted socket must still work after the shed.
	if err := conn.WriteMessage(wsproto.OpText, []byte("still alive")); err != nil {
		t.Fatal(err)
	}
	if _, msg, err := conn.ReadMessage(); err != nil || string(msg) != "still alive" {
		t.Fatalf("echo after shed: %q, %v", msg, err)
	}
}
