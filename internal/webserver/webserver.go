// Package webserver serves a webgen.World over a real loopback TCP
// listener: every publisher and company host is virtual-hosted on one
// address (selected by the Host header, the way a DNS override would),
// and WebSocket endpoints complete genuine RFC 6455 handshakes via
// internal/wsproto.
//
// The crawler's browser points its resolver at Server.Addr, so crawls
// exercise the full network path — TCP, HTTP, WebSocket framing — rather
// than in-process shortcuts.
package webserver

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
	"unicode/utf8"

	"repro/internal/faultnet"
	"repro/internal/obs"
	"repro/internal/urlutil"
	"repro/internal/webgen"
	"repro/internal/wsproto"
)

// Stats counts server-side activity, useful in tests and examples.
type Stats struct {
	HTTPRequests   atomic.Int64
	WSHandshakes   atomic.Int64
	WSMessagesSent atomic.Int64
	WSMessagesRecv atomic.Int64
	NotFound       atomic.Int64

	// WSShed counts upgrade requests refused with 503 by the MaxConns
	// admission gate; AcceptShed counts TCP connections dropped at the
	// listener by the MaxAccepted gate.
	WSShed     atomic.Int64
	AcceptShed atomic.Int64
}

// EchoPath is the WebSocket echo endpoint served on any Host when
// Options.EnableEcho is set. It exists for load generation
// (cmd/wsload) and capacity testing: every data message is written
// straight back with its opcode preserved, exercising the full
// accept → handshake → read → write path with no World behind it.
const EchoPath = "/__echo"

// Options configures optional server behavior.
type Options struct {
	// Fault, when enabled, degrades every accepted connection — HTTP
	// and WebSocket alike — through internal/faultnet. The schedule is
	// applied uniformly (faultnet.ModeUniform, seeded by FaultSeed) so
	// accept order cannot leak into per-request outcomes.
	Fault     faultnet.Profile
	FaultSeed int64

	// IdleTimeout bounds each individual read/write on a served
	// WebSocket, refreshed per message — a wedged or vanished peer
	// releases its goroutine within one timeout while an active socket
	// lives forever. Default 30s.
	IdleTimeout time.Duration

	// MaxConns caps concurrently served WebSocket connections. Upgrade
	// requests beyond the cap are refused with 503 ("server
	// overloaded") and counted in Stats.WSShed / ws.conns_shed, so a
	// load spike degrades into fast, observable rejections instead of
	// unbounded goroutine growth. 0 means unlimited.
	MaxConns int

	// MaxAccepted caps concurrently open TCP connections at the
	// listener. Connections beyond the cap are closed immediately after
	// accept — before HTTP parsing — and counted in Stats.AcceptShed /
	// ws.accept_shed. 0 means unlimited.
	MaxAccepted int

	// EnableEcho serves EchoPath on every virtual host (and, when World
	// is nil, as the only endpoint). Off by default: the echo endpoint
	// is a load-testing surface, not part of the synthetic web.
	EnableEcho bool
}

// Server serves one World.
type Server struct {
	World *webgen.World
	Stats Stats

	opts     Options
	ln       net.Listener
	srv      *http.Server
	mu       sync.Mutex
	socks    map[*wsproto.Conn]struct{} // guarded by mu
	wsActive int                        // guarded by mu
	closed   bool                       // guarded by mu

	resMu    sync.Mutex
	resCache map[string]cachedResource // guarded by resMu; Fetch's memo of World.Get results
}

// cachedResource is one memoized World.Get resolution. World is a pure
// function of its Config — resolving the same URL twice renders the
// same bytes — so Fetch caches resolutions instead of re-rendering per
// request. The cache is bounded by the number of distinct URLs in the
// world and is only populated by the in-process Fetch plane; the TCP
// handler keeps rendering per request, preserving the reference
// pipeline's behavior exactly.
type cachedResource struct {
	res *webgen.Resource
	ok  bool
}

// Start launches the server on an ephemeral loopback port.
func Start(w *webgen.World) (*Server, error) { return StartWith(w, Options{}) }

// StartWith launches the server with explicit options. A nil World is
// allowed when EnableEcho is set: the server then serves only the echo
// endpoint, which is how cmd/wsload self-serves a pure echo target.
func StartWith(w *webgen.World, opts Options) (*Server, error) {
	if opts.IdleTimeout == 0 {
		opts.IdleTimeout = 30 * time.Second
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("webserver: listen: %w", err)
	}
	ln = faultnet.WrapListener(ln, opts.Fault, opts.FaultSeed, faultnet.ModeUniform)
	s := &Server{
		World: w,
		opts:  opts,
		socks: map[*wsproto.Conn]struct{}{},
	}
	// Accept gate outermost: shed decisions happen before fault
	// injection spends any budget on the doomed connection.
	ln = gateListener(ln, opts.MaxAccepted, &s.Stats)
	s.ln = ln
	s.srv = &http.Server{
		Handler:           http.HandlerFunc(s.handle),
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		if err := s.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			// Serve exits on Close; other errors are fatal only to the
			// accept loop and will surface as dial failures in callers.
			_ = err
		}
	}()
	return s, nil
}

// Addr returns the host:port the server listens on.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts down the listener and drops open sockets.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.socks {
		_ = c.Close()
	}
	s.socks = map[*wsproto.Conn]struct{}{}
	s.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}

// hostOnly strips a port from a Host header value.
func hostOnly(hostport string) string {
	if i := strings.LastIndexByte(hostport, ':'); i >= 0 && !strings.Contains(hostport[i:], "]") {
		return hostport[:i]
	}
	return hostport
}

// isUpgrade reports whether the request is a WebSocket opening handshake.
func isUpgrade(r *http.Request) bool {
	return strings.EqualFold(r.Header.Get("Upgrade"), "websocket")
}

func (s *Server) handle(w http.ResponseWriter, r *http.Request) {
	host := hostOnly(r.Host)
	if s.opts.EnableEcho && r.URL.Path == EchoPath {
		if !isUpgrade(r) {
			http.Error(w, "websocket upgrade required", http.StatusUpgradeRequired)
			return
		}
		s.handleEcho(w, r)
		return
	}
	if s.World == nil || !s.World.KnownHost(host) {
		s.Stats.NotFound.Add(1)
		http.Error(w, "unknown virtual host", http.StatusBadGateway)
		return
	}
	if isUpgrade(r) {
		s.handleWS(w, r, host)
		return
	}
	s.Stats.HTTPRequests.Add(1)
	obs.ServerRequests.Inc()
	url := "http://" + host + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	// Drain request bodies (beacon POSTs) before responding.
	if r.Body != nil {
		_, _ = io.Copy(io.Discard, io.LimitReader(r.Body, 1<<20))
	}
	res, ok := s.World.Get(url)
	if !ok {
		s.Stats.NotFound.Add(1)
		http.Error(w, "no such resource", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", res.ContentType)
	w.WriteHeader(res.Status)
	_, _ = w.Write(res.Body)
}

func (s *Server) handleWS(w http.ResponseWriter, r *http.Request, host string) {
	ep, ok := s.World.WSEndpointFor(host, r.URL.Path)
	if !ok {
		s.Stats.NotFound.Add(1)
		http.Error(w, "no websocket endpoint here", http.StatusNotFound)
		return
	}
	query := r.URL.RawQuery
	conn, ok := s.admit(w, r)
	if !ok {
		return
	}
	s.track(conn)
	go s.serveSocket(conn, ep, query)
}

// handleEcho upgrades and serves the echo endpoint, under the same
// admission gate as World endpoints.
func (s *Server) handleEcho(w http.ResponseWriter, r *http.Request) {
	conn, ok := s.admit(w, r)
	if !ok {
		return
	}
	s.track(conn)
	go s.echoLoop(conn)
}

// admit runs the MaxConns admission gate and, if a slot is free,
// completes the WebSocket upgrade. On success the caller owns one
// admission slot, released by untrack when the serve loop exits.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (*wsproto.Conn, bool) {
	start := time.Now()
	if !s.tryReserve() {
		s.Stats.WSShed.Add(1)
		obs.WSConnsShed.Inc()
		http.Error(w, "server overloaded", http.StatusServiceUnavailable)
		return nil, false
	}
	conn, err := wsproto.Upgrade(w, r)
	if err != nil {
		s.release()
		return nil, false
	}
	obs.WSHandshake.ObserveSince(start)
	s.Stats.WSHandshakes.Add(1)
	obs.ServerHandshakes.Inc()
	obs.WSConnsTotal.Inc()
	return conn, true
}

// tryReserve claims one MaxConns admission slot.
func (s *Server) tryReserve() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	if s.opts.MaxConns > 0 && s.wsActive >= s.opts.MaxConns {
		return false
	}
	s.wsActive++
	obs.WSConnsActive.Add(1)
	return true
}

// release returns an admission slot claimed by tryReserve, for paths
// where the conn never reached its serve loop (failed upgrades).
func (s *Server) release() {
	s.mu.Lock()
	s.wsActive--
	s.mu.Unlock()
	obs.WSConnsActive.Add(-1)
}

func (s *Server) track(c *wsproto.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		_ = c.Close()
		return
	}
	s.socks[c] = struct{}{}
}

// untrack forgets a served conn and returns its admission slot. Every
// admitted conn's serve loop defers exactly one untrack, so the slot
// accounting balances even when track found the server already closed.
func (s *Server) untrack(c *wsproto.Conn) {
	s.mu.Lock()
	delete(s.socks, c)
	s.wsActive--
	s.mu.Unlock()
	obs.WSConnsActive.Add(-1)
}

// serveSocket implements the endpoint protocol: push the deterministic
// response messages for this connection, then read client traffic until
// the client closes.
func (s *Server) serveSocket(conn *wsproto.Conn, ep *webgen.WSEndpoint, query string) {
	defer s.untrack(conn)
	defer conn.Close()
	idle := s.opts.IdleTimeout
	for _, msg := range s.World.WSMessages(ep, query) {
		// Anything that is not valid UTF-8 (images, binary blobs) must
		// travel as a binary frame, or the client's RFC 6455 text
		// validation would fail the connection.
		op := wsproto.OpText
		if !utf8.Valid(msg) {
			op = wsproto.OpBinary
		}
		_ = conn.SetWriteDeadline(time.Now().Add(idle))
		if err := conn.WriteMessage(op, msg); err != nil {
			return
		}
		s.Stats.WSMessagesSent.Add(1)
		obs.ServerMessages.Inc()
		obs.WSMessagesOut.Inc()
		obs.WSBytesOut.Add(int64(len(msg)))
	}
	_ = conn.SetWriteDeadline(time.Time{})
	for {
		_ = conn.SetReadDeadline(time.Now().Add(idle))
		_, msg, err := conn.ReadMessage()
		if err != nil {
			return
		}
		s.Stats.WSMessagesRecv.Add(1)
		obs.WSMessagesIn.Inc()
		obs.WSBytesIn.Add(int64(len(msg)))
	}
}

// echoLoop serves EchoPath: each data message is written straight back
// with its opcode preserved, under per-message idle deadlines.
func (s *Server) echoLoop(conn *wsproto.Conn) {
	defer s.untrack(conn)
	defer conn.Close()
	idle := s.opts.IdleTimeout
	for {
		_ = conn.SetReadDeadline(time.Now().Add(idle))
		op, msg, err := conn.ReadMessage()
		if err != nil {
			return
		}
		s.Stats.WSMessagesRecv.Add(1)
		obs.WSMessagesIn.Inc()
		obs.WSBytesIn.Add(int64(len(msg)))
		// msg aliases the conn's read scratch (wsproto ownership rule),
		// but WriteMessage finishes with the bytes before returning and
		// the next read starts after it, so echoing needs no copy.
		_ = conn.SetWriteDeadline(time.Now().Add(idle))
		if err := conn.WriteMessage(op, msg); err != nil {
			return
		}
		s.Stats.WSMessagesSent.Add(1)
		obs.ServerMessages.Inc()
		obs.WSMessagesOut.Inc()
		obs.WSBytesOut.Add(int64(len(msg)))
	}
}

// Fetch resolves one HTTP request against the World in-process,
// bypassing the TCP listener and the net/http stack entirely. It is the
// fast path for single-process crawls: the handler logic and counters
// mirror handle() exactly, so a crawl fetching through Fetch observes
// byte-identical statuses, content types, and bodies to one fetching
// over the wire (proven by the pipeline differential test in
// internal/core). postBody is accepted for signature fidelity with an
// HTTP POST; like handle(), the server discards request bodies.
//
// The returned body aliases the World's resource bytes: callers must
// treat it as read-only. Unknown virtual hosts return an error, the
// in-process equivalent of the failed dial a wire client would see.
//
// Fetch must not be used under a fault profile — fault injection
// degrades the wire, so bypassing the wire would bypass the faults;
// core keeps fault-injected crawls on the TCP client.
func (s *Server) Fetch(u *urlutil.URL, postBody []byte) (status int, contentType string, body []byte, err error) {
	_ = postBody
	if s.World == nil || !s.World.KnownHost(u.Host) {
		return 0, "", nil, fmt.Errorf("webserver: no route to host %q", u.Host)
	}
	s.Stats.HTTPRequests.Add(1)
	obs.ServerRequests.Inc()
	key := u.String()
	s.resMu.Lock()
	cached, hit := s.resCache[key]
	s.resMu.Unlock()
	var res *webgen.Resource
	var ok bool
	if hit {
		res, ok = cached.res, cached.ok
	} else {
		res, ok = s.World.GetURL(u)
		s.resMu.Lock()
		if s.resCache == nil {
			s.resCache = map[string]cachedResource{}
		}
		s.resCache[key] = cachedResource{res: res, ok: ok}
		s.resMu.Unlock()
	}
	if !ok {
		s.Stats.NotFound.Add(1)
		// http.Error's exact observable surface: status, content type,
		// and the message with a trailing newline.
		return http.StatusNotFound, "text/plain; charset=utf-8", []byte("no such resource\n"), nil
	}
	b := res.Body
	if b == nil {
		// A wire client's io.ReadAll on an empty response yields an
		// empty non-nil slice; keep the two paths indistinguishable.
		b = []byte{}
	}
	return res.Status, res.ContentType, b, nil
}

// Resolver returns a function mapping any known virtual host:port to the
// server's address, for use as a browser/Dialer resolver.
func (s *Server) Resolver() func(hostport string) string {
	addr := s.Addr()
	return func(hostport string) string {
		if s.World != nil && s.World.KnownHost(hostOnly(hostport)) {
			return addr
		}
		return hostport
	}
}

// Client returns an http.Client whose connections all go to this server
// while preserving Host-header virtual hosting.
func (s *Server) Client() *http.Client {
	addr := s.Addr()
	dialer := &net.Dialer{Timeout: 5 * time.Second}
	transport := &http.Transport{
		DialContext: func(ctx context.Context, network, _ string) (net.Conn, error) {
			return dialer.DialContext(ctx, network, addr)
		},
		MaxIdleConnsPerHost: 32,
		// Under fault injection every request must ride its own
		// connection: pooled conns carry budget state across requests,
		// making a request's outcome depend on which conn the pool
		// happens to hand out — exactly the nondeterminism the uniform
		// schedule exists to exclude.
		DisableKeepAlives: s.opts.Fault.Enabled(),
	}
	return &http.Client{Transport: transport, Timeout: 30 * time.Second}
}
