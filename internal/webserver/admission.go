package webserver

import (
	"net"
	"sync"

	"repro/internal/obs"
)

// shedListener enforces the MaxAccepted gate at the TCP layer: a fixed
// pool of accept slots, one held per open connection. When the pool is
// exhausted, freshly accepted connections are closed immediately —
// load-shedding at the cheapest possible point, before the HTTP server
// ever allocates a goroutine or parses a request line. Shed conns are
// counted in ws.accept_shed; clients observe a reset/EOF and should
// treat it as backpressure (see OPERATIONS.md, "Load testing &
// capacity").
//
// The gate sits outermost in the listener stack (TCP → faultnet →
// shed): fault injection still applies to admitted connections, and a
// shed decision costs one accept+close regardless of fault profile.
type shedListener struct {
	net.Listener
	sem   chan struct{}
	stats *Stats
}

// gateListener wraps ln with an accept gate of maxAccepted slots, or
// returns ln unchanged when the gate is disabled.
func gateListener(ln net.Listener, maxAccepted int, stats *Stats) net.Listener {
	if maxAccepted <= 0 {
		return ln
	}
	return &shedListener{Listener: ln, sem: make(chan struct{}, maxAccepted), stats: stats}
}

func (l *shedListener) Accept() (net.Conn, error) {
	for {
		nc, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		select {
		case l.sem <- struct{}{}:
			obs.WSTCPActive.Add(1)
			return &gatedConn{Conn: nc, l: l}, nil
		default:
			l.stats.AcceptShed.Add(1)
			obs.WSAcceptShed.Inc()
			_ = nc.Close()
		}
	}
}

// gatedConn returns its accept slot exactly once, on first Close. The
// net/http server closes every conn it serves, so slots cannot leak
// while the server runs; Server.Close tears down the listener and the
// remaining conns, draining the pool.
type gatedConn struct {
	net.Conn
	l    *shedListener
	once sync.Once
}

func (c *gatedConn) Close() error {
	c.once.Do(func() {
		<-c.l.sem
		obs.WSTCPActive.Add(-1)
	})
	return c.Conn.Close()
}
