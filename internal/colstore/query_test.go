package colstore

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/analysis"
)

func queryStore(t *testing.T) *Store {
	t.Helper()
	st, err := Open(Config{Dir: t.TempDir(), NumShards: 2, Meta: testMeta()})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range allRecords() {
		if _, err := st.Ingest(rec); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func TestEngineSites(t *testing.T) {
	e := NewEngine(queryStore(t))
	all := e.Sites(SitesQuery{})
	if len(all) != 3 {
		t.Fatalf("sites = %d, want 3", len(all))
	}
	if all[0].Rank != 1 || all[1].Rank != 2 || all[2].Rank != 3 {
		t.Errorf("sites out of rank order: %+v", all)
	}
	if got := e.Sites(SitesQuery{Domain: "news.com"}); len(got) != 1 || got[0].Domain != "news.com" {
		t.Errorf("domain filter: %+v", got)
	}
	if got := e.Sites(SitesQuery{MinRank: 2, MaxRank: 2}); len(got) != 1 || got[0].Rank != 2 {
		t.Errorf("rank filter: %+v", got)
	}
	if got := e.Sites(SitesQuery{WithSockets: true}); len(got) != 3 {
		t.Errorf("withSockets filter: %+v", got)
	}
}

func TestEngineChains(t *testing.T) {
	e := NewEngine(queryStore(t))
	all := e.Chains(ChainsQuery{})
	// Each site ingested 4 pages; even pages carry one socket → 2 each.
	if all.Total != 6 || len(all.Sockets) != 6 {
		t.Fatalf("total = %d (%d listed), want 6", all.Total, len(all.Sockets))
	}
	if got := e.Chains(ChainsQuery{Site: "pub.com"}); got.Total != 2 {
		t.Errorf("site filter total = %d, want 2", got.Total)
	}
	if got := e.Chains(ChainsQuery{Receiver: "tracker.com"}); got.Total != 6 {
		t.Errorf("receiver filter total = %d, want 6", got.Total)
	}
	if got := e.Chains(ChainsQuery{ChainContains: "news.com"}); got.Total != 2 {
		t.Errorf("chain-contains total = %d, want 2", got.Total)
	}
	// tracker.com accumulates A&A observations with zero non-A&A, so it
	// lands in D′ and every socket is A&A-received.
	if got := e.Chains(ChainsQuery{AA: "received"}); got.Total != 6 {
		t.Errorf("aa=received total = %d, want 6", got.Total)
	}
	if got := e.Chains(ChainsQuery{AA: "none"}); got.Total != 0 {
		t.Errorf("aa=none total = %d, want 0", got.Total)
	}
	blocked := true
	if got := e.Chains(ChainsQuery{Blocked: &blocked}); got.Total != 3 {
		t.Errorf("blocked filter total = %d, want 3 (page 0 of each site)", got.Total)
	}
	if got := e.Chains(ChainsQuery{Limit: 2}); got.Total != 6 || len(got.Sockets) != 2 {
		t.Errorf("limit: total %d, listed %d", got.Total, len(got.Sockets))
	}

	groups := e.Chains(ChainsQuery{GroupBy: "site"})
	if len(groups.Groups) != 3 || groups.Sockets != nil {
		t.Fatalf("groupBy site: %+v", groups)
	}
	for _, g := range groups.Groups {
		if g.Sockets != 2 || g.Blocked != 1 {
			t.Errorf("group %+v, want 2 sockets / 1 blocked", g)
		}
	}
	pair := e.Chains(ChainsQuery{GroupBy: "pair"})
	if len(pair.Groups) != 1 || pair.Groups[0].Key != "tracker.com -> tracker.com" || pair.Groups[0].Sockets != 6 {
		t.Errorf("groupBy pair: %+v", pair.Groups)
	}
}

func TestEngineLabels(t *testing.T) {
	e := NewEngine(queryStore(t))
	rows := e.Labels(LabelsQuery{})
	byDom := map[string]LabelRow{}
	for _, r := range rows {
		byDom[r.Domain] = r
	}
	tr, ok := byDom["tracker.com"]
	if !ok || !tr.AA || tr.AAObs == 0 {
		t.Errorf("tracker.com row: %+v", tr)
	}
	cdn, ok := byDom["cdn.com"]
	if !ok || cdn.AA || cdn.NonAA == 0 {
		t.Errorf("cdn.com row: %+v", cdn)
	}
	if only := e.Labels(LabelsQuery{OnlyAA: true}); len(only) != 1 || only[0].Domain != "tracker.com" {
		t.Errorf("onlyAA: %+v", only)
	}
}

// TestEngineSnapshotCache: queries between ingests reuse one snapshot;
// an ingest invalidates it.
func TestEngineSnapshotCache(t *testing.T) {
	st := queryStore(t)
	e := NewEngine(st)
	ds1, _ := e.Dataset()
	ds2, _ := e.Dataset()
	if ds1 != ds2 {
		t.Error("unchanged store rebuilt its snapshot")
	}
	if _, err := st.Ingest(testRecord("fresh.com", 9, 0)); err != nil {
		t.Fatal(err)
	}
	ds3, _ := e.Dataset()
	if ds3 == ds1 {
		t.Error("snapshot not invalidated by ingest")
	}
	if len(ds3.Sites) != len(ds1.Sites)+1 {
		t.Errorf("new snapshot has %d sites, want %d", len(ds3.Sites), len(ds1.Sites)+1)
	}
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestHTTPQueryService(t *testing.T) {
	st := queryStore(t)
	srv := httptest.NewServer(NewHandler(st))
	defer srv.Close()

	// /dataset must serve exactly the store-derived dataset bytes — the
	// oracle-comparison endpoint.
	ds, _ := st.Dataset()
	status, body := get(t, srv.URL+"/dataset")
	if status != http.StatusOK || !bytes.Equal(body, datasetBytes(t, ds)) {
		t.Errorf("/dataset: status %d, byte match %v", status, bytes.Equal(body, datasetBytes(t, ds)))
	}

	status, body = get(t, srv.URL+"/tables?table=1&format=text")
	if status != http.StatusOK || !strings.Contains(string(body), "% Sites w/ Sockets") {
		t.Errorf("/tables text: status %d body %q", status, body)
	}
	status, body = get(t, srv.URL+"/tables?table=5")
	if status != http.StatusOK || !json.Valid(body) {
		t.Errorf("/tables json: status %d", status)
	}
	if status, _ := get(t, srv.URL+"/tables?table=9"); status != http.StatusBadRequest {
		t.Errorf("/tables?table=9 status %d, want 400", status)
	}

	status, body = get(t, srv.URL+"/sites?withSockets=true")
	var sites []analysis.SiteSummary
	if status != http.StatusOK || json.Unmarshal(body, &sites) != nil || len(sites) != 3 {
		t.Errorf("/sites: status %d, %d sites", status, len(sites))
	}

	status, body = get(t, srv.URL+"/chains?groupBy=receiver")
	var chains ChainsResult
	if status != http.StatusOK || json.Unmarshal(body, &chains) != nil || chains.Total != 6 {
		t.Errorf("/chains: status %d total %d", status, chains.Total)
	}
	if status, _ := get(t, srv.URL+"/chains?aa=nope"); status != http.StatusBadRequest {
		t.Errorf("/chains bad aa: status %d, want 400", status)
	}

	status, body = get(t, srv.URL+"/labels?onlyAA=true")
	var labels []LabelRow
	if status != http.StatusOK || json.Unmarshal(body, &labels) != nil || len(labels) != 1 {
		t.Errorf("/labels: status %d rows %d", status, len(labels))
	}

	status, body = get(t, srv.URL+"/storestats")
	var stats Stats
	if status != http.StatusOK || json.Unmarshal(body, &stats) != nil || stats.Pages != 12 {
		t.Errorf("/storestats: status %d %+v", status, stats)
	}
}

// TestHTTPRefreshFollowsSeals: a query service over a read-only store
// picks up segments sealed after it started via /refresh — the
// live-crawl query path across processes.
func TestHTTPRefreshFollowsSeals(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Config{Dir: dir, NumShards: 2, Meta: testMeta()})
	if err != nil {
		t.Fatal(err)
	}
	recs := allRecords()
	for _, rec := range recs[:6] {
		if _, err := st.Ingest(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Seal(); err != nil {
		t.Fatal(err)
	}

	ro, err := OpenRead(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(ro))
	defer srv.Close()

	for _, rec := range recs[6:] {
		if _, err := st.Ingest(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Seal(); err != nil {
		t.Fatal(err)
	}

	status, body := get(t, srv.URL+"/refresh")
	var stats Stats
	if status != http.StatusOK || json.Unmarshal(body, &stats) != nil || stats.Pages != len(recs) {
		t.Fatalf("/refresh: status %d %+v, want %d pages", status, stats, len(recs))
	}
	_, body = get(t, srv.URL+"/dataset")
	want, _ := st.Dataset()
	if !bytes.Equal(body, datasetBytes(t, want)) {
		t.Error("reader /dataset differs from writer's dataset after refresh")
	}
}
