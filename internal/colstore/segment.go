package colstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"repro/internal/analysis"
)

// Segment file layout (DESIGN.md §15). A segment is the sealed, durable
// unit of the columnar store: one batch of PageRecords for one shard,
// dictionary-encoded and written atomically (tmp + fsync + rename +
// parent-dir sync).
//
//	"WSCOLSG1"                  8-byte header magic
//	uvarint version (1)
//	uvarint shard, uvarint seq
//	dict doms                   site/receiver/initiator/HTTP/label-obs domains
//	dict labels                 sent-item and recv-class vocabulary
//	dict strs                   page/socket/chain URLs, ad samples
//	columns                     column-major record data (see below)
//	footer                      5 × uint32 LE: dictsOff, colsOff,
//	                            records, sockets, bodyLen
//	uint32 LE crc32(IEEE)       over everything before it (footer incl.)
//	"WSCOLEND"                  8-byte end magic
//
// The end magic plus CRC make torn or bit-rotted segments detectable
// without trusting any length field; the footer lets a reader validate
// section offsets and sizes before decoding. Dictionaries assign IDs in
// first-use order during the column encode, so identical record batches
// produce byte-identical segments.
//
// Columns, in order. Lengths of nil-able slices/maps are encoded with a
// +1 marker (0 = nil, n+1 = n elements) so nil-ness survives the round
// trip exactly — chainDomains/chainUrls marshal null vs [] differently
// in dataset JSON, and the store's output must stay byte-identical to
// the spool-merge oracle's. Map entries are always encoded sorted by
// key. Signed int fields use zigzag varints; IDs and lengths uvarints.
//
//	pages:   site domID ×n, rank ×n, pageURL strID ×n
//	sockets: per-page socket count ×n, then per flattened socket:
//	         site, rank, pageURL, url, receiver, initiator,
//	         chainDomains, chainURLs, flags byte
//	         (crossOrigin|handshakeOk<<1|chainBlocked<<2),
//	         framesSent, framesRecv, sentItems, recvClasses,
//	         adRefs, adSamples
//	http:    per-page entry count, then per entry: key domID,
//	         domain field domID, requests, chainsBlocked,
//	         sentItems map, recvClasses map
//	obs:     per-page AAObs, NonAAObs, CDNObs maps (domID → count)
const (
	segMagic    = "WSCOLSG1"
	segEndMagic = "WSCOLEND"
	segVersion  = 1
	segTailLen  = 20 + 4 + 8 // footer + crc + end magic
)

// dict assigns dense IDs to strings in first-use order.
type dict struct {
	ids  map[string]uint64
	vals []string
}

func newDict() *dict { return &dict{ids: map[string]uint64{}} }

func (d *dict) id(s string) uint64 {
	if id, ok := d.ids[s]; ok {
		return id
	}
	id := uint64(len(d.vals))
	d.ids[s] = id
	d.vals = append(d.vals, s)
	return id
}

func appendDict(buf []byte, d *dict) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(d.vals)))
	for _, v := range d.vals {
		buf = binary.AppendUvarint(buf, uint64(len(v)))
		buf = append(buf, v...)
	}
	return buf
}

// segEncoder holds the three dictionaries and the growing column buffer
// while a segment encodes.
type segEncoder struct {
	doms   *dict
	labels *dict
	strs   *dict
	cols   []byte
}

func (e *segEncoder) uv(v uint64)  { e.cols = binary.AppendUvarint(e.cols, v) }
func (e *segEncoder) sv(v int)     { e.cols = binary.AppendVarint(e.cols, int64(v)) }
func (e *segEncoder) dom(s string) { e.uv(e.doms.id(s)) }
func (e *segEncoder) str(s string) { e.uv(e.strs.id(s)) }

// slice encodes a nil-able string slice with the +1 nil marker.
func (e *segEncoder) slice(vals []string, d *dict) {
	if vals == nil {
		e.uv(0)
		return
	}
	e.uv(uint64(len(vals)) + 1)
	for _, v := range vals {
		e.uv(d.id(v))
	}
}

// counts encodes a nil-able map[string]int sorted by key against d.
func (e *segEncoder) counts(m map[string]int, d *dict) {
	if m == nil {
		e.uv(0)
		return
	}
	e.uv(uint64(len(m)) + 1)
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e.uv(d.id(k))
		e.sv(m[k])
	}
}

// encodeSegment serializes one shard's record batch into segment bytes.
func encodeSegment(shard, seq int, recs []*analysis.PageRecord) []byte {
	e := &segEncoder{doms: newDict(), labels: newDict(), strs: newDict()}

	// pages
	for _, r := range recs {
		e.dom(r.Site)
	}
	for _, r := range recs {
		e.sv(r.Rank)
	}
	for _, r := range recs {
		e.str(r.PageURL)
	}
	// sockets
	sockets := 0
	for _, r := range recs {
		e.uv(uint64(len(r.Sockets)))
		sockets += len(r.Sockets)
	}
	for _, r := range recs {
		for i := range r.Sockets {
			ws := &r.Sockets[i]
			e.dom(ws.Site)
			e.sv(ws.Rank)
			e.str(ws.PageURL)
			e.str(ws.URL)
			e.dom(ws.ReceiverDomain)
			e.dom(ws.InitiatorDomain)
			e.slice(ws.ChainDomains, e.doms)
			e.slice(ws.ChainURLs, e.strs)
			var flags byte
			if ws.CrossOrigin {
				flags |= 1
			}
			if ws.HandshakeOK {
				flags |= 2
			}
			if ws.ChainBlocked {
				flags |= 4
			}
			e.cols = append(e.cols, flags)
			e.sv(ws.FramesSent)
			e.sv(ws.FramesRecv)
			e.slice(ws.SentItems, e.labels)
			e.slice(ws.RecvClasses, e.labels)
			e.sv(ws.AdRefs)
			e.slice(ws.AdSamples, e.strs)
		}
	}
	// http
	for _, r := range recs {
		if r.HTTP == nil {
			e.uv(0)
			continue
		}
		e.uv(uint64(len(r.HTTP)) + 1)
		keys := make([]string, 0, len(r.HTTP))
		for k := range r.HTTP {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			t := r.HTTP[k]
			e.dom(k)
			e.dom(t.Domain)
			e.sv(t.Requests)
			e.sv(t.ChainsBlocked)
			e.counts(t.SentItems, e.labels)
			e.counts(t.RecvClasses, e.labels)
		}
	}
	// obs
	for _, r := range recs {
		e.counts(r.AAObs, e.doms)
	}
	for _, r := range recs {
		e.counts(r.NonAAObs, e.doms)
	}
	for _, r := range recs {
		e.counts(r.CDNObs, e.doms)
	}

	// Assemble: header, dicts, columns, footer, crc, end magic.
	buf := make([]byte, 0, len(e.cols)+4096)
	buf = append(buf, segMagic...)
	buf = binary.AppendUvarint(buf, segVersion)
	buf = binary.AppendUvarint(buf, uint64(shard))
	buf = binary.AppendUvarint(buf, uint64(seq))
	dictsOff := uint32(len(buf))
	buf = appendDict(buf, e.doms)
	buf = appendDict(buf, e.labels)
	buf = appendDict(buf, e.strs)
	colsOff := uint32(len(buf))
	buf = append(buf, e.cols...)
	bodyLen := uint32(len(buf))
	buf = binary.LittleEndian.AppendUint32(buf, dictsOff)
	buf = binary.LittleEndian.AppendUint32(buf, colsOff)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(recs)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(sockets))
	buf = binary.LittleEndian.AppendUint32(buf, bodyLen)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	buf = append(buf, segEndMagic...)
	return buf
}

// segDecoder walks a validated segment byte slice.
type segDecoder struct {
	data []byte
	off  int
	err  error
}

func (d *segDecoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *segDecoder) uv() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		d.fail("colstore: segment: bad uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *segDecoder) sv() int {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		d.fail("colstore: segment: bad varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return int(v)
}

func (d *segDecoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.data) {
		d.fail("colstore: segment: truncated at offset %d", d.off)
		return 0
	}
	b := d.data[d.off]
	d.off++
	return b
}

func (d *segDecoder) dict() []string {
	n := d.uv()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.data)) {
		d.fail("colstore: segment: dictionary claims %d entries", n)
		return nil
	}
	vals := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		l := d.uv()
		if d.err != nil {
			return nil
		}
		if uint64(d.off)+l > uint64(len(d.data)) {
			d.fail("colstore: segment: dictionary entry overruns data")
			return nil
		}
		vals = append(vals, string(d.data[d.off:d.off+int(l)]))
		d.off += int(l)
	}
	return vals
}

func (d *segDecoder) lookup(vals []string, what string) string {
	id := d.uv()
	if d.err != nil {
		return ""
	}
	if id >= uint64(len(vals)) {
		d.fail("colstore: segment: %s id %d out of range (%d entries)", what, id, len(vals))
		return ""
	}
	return vals[id]
}

func (d *segDecoder) slice(vals []string, what string) []string {
	marker := d.uv()
	if marker == 0 || d.err != nil {
		return nil
	}
	n := marker - 1
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, d.lookup(vals, what))
	}
	return out
}

func (d *segDecoder) counts(vals []string, what string) map[string]int {
	marker := d.uv()
	if marker == 0 || d.err != nil {
		return nil
	}
	n := marker - 1
	out := make(map[string]int, n)
	for i := uint64(0); i < n; i++ {
		k := d.lookup(vals, what)
		out[k] = d.sv()
	}
	return out
}

// decodeSegment validates and deserializes a sealed segment.
func decodeSegment(data []byte) (shard, seq int, recs []*analysis.PageRecord, err error) {
	if len(data) < len(segMagic)+segTailLen {
		return 0, 0, nil, fmt.Errorf("colstore: segment too short (%d bytes)", len(data))
	}
	if string(data[:len(segMagic)]) != segMagic {
		return 0, 0, nil, fmt.Errorf("colstore: bad segment magic")
	}
	if string(data[len(data)-8:]) != segEndMagic {
		return 0, 0, nil, fmt.Errorf("colstore: segment missing end magic (torn write)")
	}
	crcOff := len(data) - 12
	want := binary.LittleEndian.Uint32(data[crcOff:])
	if got := crc32.ChecksumIEEE(data[:crcOff]); got != want {
		return 0, 0, nil, fmt.Errorf("colstore: segment checksum mismatch (got %08x, want %08x)", got, want)
	}
	ftr := data[crcOff-20 : crcOff]
	dictsOff := binary.LittleEndian.Uint32(ftr[0:])
	colsOff := binary.LittleEndian.Uint32(ftr[4:])
	records := binary.LittleEndian.Uint32(ftr[8:])
	sockets := binary.LittleEndian.Uint32(ftr[12:])
	bodyLen := binary.LittleEndian.Uint32(ftr[16:])
	if int(bodyLen) != crcOff-20 || dictsOff > colsOff || colsOff > bodyLen {
		return 0, 0, nil, fmt.Errorf("colstore: segment footer offsets inconsistent")
	}

	d := &segDecoder{data: data[:bodyLen], off: len(segMagic)}
	if v := d.uv(); d.err == nil && v != segVersion {
		return 0, 0, nil, fmt.Errorf("colstore: unsupported segment version %d", v)
	}
	shard = int(d.uv())
	seq = int(d.uv())
	if d.err == nil && d.off != int(dictsOff) {
		return 0, 0, nil, fmt.Errorf("colstore: segment header/footer disagree on dictionary offset")
	}
	doms := d.dict()
	labels := d.dict()
	strs := d.dict()
	if d.err == nil && d.off != int(colsOff) {
		return 0, 0, nil, fmt.Errorf("colstore: segment dictionaries/footer disagree on column offset")
	}

	n := int(records)
	recs = make([]*analysis.PageRecord, n)
	for i := range recs {
		recs[i] = &analysis.PageRecord{}
	}
	// pages
	for i := 0; i < n; i++ {
		recs[i].Site = d.lookup(doms, "site")
	}
	for i := 0; i < n; i++ {
		recs[i].Rank = d.sv()
	}
	for i := 0; i < n; i++ {
		recs[i].PageURL = d.lookup(strs, "pageURL")
	}
	// sockets
	total := 0
	for i := 0; i < n; i++ {
		c := int(d.uv())
		if d.err != nil {
			break
		}
		total += c
		if total > int(sockets) {
			d.fail("colstore: segment socket counts exceed footer total %d", sockets)
			break
		}
		if c > 0 {
			recs[i].Sockets = make([]analysis.SocketRecord, c)
		}
	}
	if d.err == nil && total != int(sockets) {
		d.fail("colstore: segment socket counts sum %d, footer says %d", total, sockets)
	}
	for i := 0; i < n; i++ {
		for j := range recs[i].Sockets {
			ws := &recs[i].Sockets[j]
			ws.Site = d.lookup(doms, "socket site")
			ws.Rank = d.sv()
			ws.PageURL = d.lookup(strs, "socket pageURL")
			ws.URL = d.lookup(strs, "socket url")
			ws.ReceiverDomain = d.lookup(doms, "receiver")
			ws.InitiatorDomain = d.lookup(doms, "initiator")
			ws.ChainDomains = d.slice(doms, "chain domain")
			ws.ChainURLs = d.slice(strs, "chain url")
			flags := d.byte()
			ws.CrossOrigin = flags&1 != 0
			ws.HandshakeOK = flags&2 != 0
			ws.ChainBlocked = flags&4 != 0
			ws.FramesSent = d.sv()
			ws.FramesRecv = d.sv()
			ws.SentItems = d.slice(labels, "sent item")
			ws.RecvClasses = d.slice(labels, "recv class")
			ws.AdRefs = d.sv()
			ws.AdSamples = d.slice(strs, "ad sample")
		}
	}
	// http
	for i := 0; i < n; i++ {
		marker := d.uv()
		if marker == 0 || d.err != nil {
			continue
		}
		m := make(map[string]*analysis.DomainTraffic, marker-1)
		for e := uint64(0); e < marker-1; e++ {
			k := d.lookup(doms, "http key")
			t := &analysis.DomainTraffic{}
			t.Domain = d.lookup(doms, "http domain")
			t.Requests = d.sv()
			t.ChainsBlocked = d.sv()
			t.SentItems = d.counts(labels, "http sent item")
			t.RecvClasses = d.counts(labels, "http recv class")
			m[k] = t
		}
		recs[i].HTTP = m
	}
	// obs
	for i := 0; i < n; i++ {
		recs[i].AAObs = d.counts(doms, "aa obs")
	}
	for i := 0; i < n; i++ {
		recs[i].NonAAObs = d.counts(doms, "non-aa obs")
	}
	for i := 0; i < n; i++ {
		recs[i].CDNObs = d.counts(doms, "cdn obs")
	}
	if d.err != nil {
		return 0, 0, nil, d.err
	}
	if d.off != len(d.data) {
		return 0, 0, nil, fmt.Errorf("colstore: segment has %d trailing column bytes", len(d.data)-d.off)
	}
	return shard, seq, recs, nil
}
