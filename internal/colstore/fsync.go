package colstore

import (
	"fmt"
	"os"

	"repro/internal/obs"
)

// SyncDir fsyncs a directory, making previously renamed/created entries
// in it durable.
//
// The rename-durability contract: writing a temp file, fsyncing it, and
// renaming it over the target makes the *contents* durable and the swap
// atomic against crashes of this process — but the rename itself lives
// in the parent directory's entry table, which the kernel is free to
// hold dirty in cache. On power loss after the rename but before the
// directory flushes, the directory can come back pointing at the old
// file, or at nothing. Every atomic-publish path (checkpoints, dataset
// exports, segment seals) must therefore end with SyncDir on the parent
// directory; only then may the caller treat the publish as durable —
// e.g. record a spool extent, ack a batch, or report a segment sealed.
//
// Each successful sync is counted in store.dir_syncs, which is also
// what the regression tests observe to prove the contract holds.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("colstore: sync dir %s: %w", dir, err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("colstore: sync dir %s: %w", dir, err)
	}
	obs.StoreDirSyncs.Add(1)
	return nil
}
