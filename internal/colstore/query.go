package colstore

import (
	"sort"
	"sync"

	"repro/internal/analysis"
)

// Engine executes read-side queries over a store. It snapshots the
// store's fold lazily and caches the snapshot by fold version, so any
// number of queries between ingests share one canonical dataset and a
// query mid-crawl is just a fold-version check away from free.
type Engine struct {
	store *Store

	mu      sync.Mutex
	version uint64
	fresh   bool
	snap    *analysis.Dataset
	stats   analysis.MergeStats
	aa      map[string]bool
}

// NewEngine builds a query engine over store.
func NewEngine(store *Store) *Engine { return &Engine{store: store} }

// snapshot returns the cached dataset + A&A set, rebuilding when the
// store has folded records since.
func (e *Engine) snapshot() (*analysis.Dataset, analysis.MergeStats, map[string]bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if v := e.store.Version(); !e.fresh || v != e.version {
		ds, stats := e.store.Dataset()
		e.snap, e.stats = ds, stats
		e.aa = ds.AASet()
		e.version = v
		e.fresh = true
	}
	return e.snap, e.stats, e.aa
}

// Dataset returns the engine's current snapshot.
func (e *Engine) Dataset() (*analysis.Dataset, analysis.MergeStats) {
	ds, stats, _ := e.snapshot()
	return ds, stats
}

// SitesQuery filters the per-site crawl outcomes.
type SitesQuery struct {
	// Domain restricts to one site (exact match).
	Domain string
	// MinRank/MaxRank bound the site rank (0 = unbounded).
	MinRank int
	MaxRank int
	// WithSockets keeps only sites that opened WebSockets.
	WithSockets bool
}

// Sites runs q; results keep the dataset's canonical rank order.
func (e *Engine) Sites(q SitesQuery) []analysis.SiteSummary {
	ds, _, _ := e.snapshot()
	out := []analysis.SiteSummary{}
	for _, s := range ds.Sites {
		if q.Domain != "" && s.Domain != q.Domain {
			continue
		}
		if q.MinRank > 0 && s.Rank < q.MinRank {
			continue
		}
		if q.MaxRank > 0 && s.Rank > q.MaxRank {
			continue
		}
		if q.WithSockets && s.Sockets == 0 {
			continue
		}
		out = append(out, s)
	}
	return out
}

// AAFilter selects sockets by where A&A domains sit in their request
// chain, in UnionAASet terms: "initiated" (A&A initiator), "received"
// (A&A receiver), "any" (either), "none" (neither). Empty = no filter.
type AAFilter string

// ChainsQuery filters the observed WebSocket request chains.
type ChainsQuery struct {
	Site          string
	Initiator     string
	Receiver      string
	ChainContains string // domain anywhere along the inclusion chain
	AA            AAFilter
	CrossOrigin   *bool
	Blocked       *bool // §4.2 post-hoc filter-list verdict
	// GroupBy aggregates matches instead of listing them: "site",
	// "initiator", "receiver", "pair" (initiator→receiver), or
	// "recvClass".
	GroupBy string
	// Limit caps listed sockets (0 = all). Ignored when grouping.
	Limit int
}

// ChainGroup is one group-by bucket.
type ChainGroup struct {
	Key     string `json:"key"`
	Sockets int    `json:"sockets"`
	Blocked int    `json:"blocked"`
}

// ChainsResult is a chains query's output: either the matching socket
// records or the group-by buckets.
type ChainsResult struct {
	Total   int                     `json:"total"`
	Sockets []analysis.SocketRecord `json:"sockets,omitempty"`
	Groups  []ChainGroup            `json:"groups,omitempty"`
}

func (q *ChainsQuery) match(ws *analysis.SocketRecord, aa map[string]bool) bool {
	if q.Site != "" && ws.Site != q.Site {
		return false
	}
	if q.Initiator != "" && ws.InitiatorDomain != q.Initiator {
		return false
	}
	if q.Receiver != "" && ws.ReceiverDomain != q.Receiver {
		return false
	}
	if q.ChainContains != "" {
		found := false
		for _, d := range ws.ChainDomains {
			if d == q.ChainContains {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	switch q.AA {
	case "initiated":
		if !aa[ws.InitiatorDomain] {
			return false
		}
	case "received":
		if !aa[ws.ReceiverDomain] {
			return false
		}
	case "any":
		if !aa[ws.InitiatorDomain] && !aa[ws.ReceiverDomain] {
			return false
		}
	case "none":
		if aa[ws.InitiatorDomain] || aa[ws.ReceiverDomain] {
			return false
		}
	}
	if q.CrossOrigin != nil && ws.CrossOrigin != *q.CrossOrigin {
		return false
	}
	if q.Blocked != nil && ws.ChainBlocked != *q.Blocked {
		return false
	}
	return true
}

func (q *ChainsQuery) groupKey(ws *analysis.SocketRecord) []string {
	switch q.GroupBy {
	case "site":
		return []string{ws.Site}
	case "initiator":
		return []string{ws.InitiatorDomain}
	case "receiver":
		return []string{ws.ReceiverDomain}
	case "pair":
		return []string{ws.InitiatorDomain + " -> " + ws.ReceiverDomain}
	case "recvClass":
		return ws.RecvClasses
	}
	return nil
}

// Chains runs q over the snapshot's canonical socket order.
func (e *Engine) Chains(q ChainsQuery) ChainsResult {
	ds, _, aa := e.snapshot()
	res := ChainsResult{}
	groups := map[string]*ChainGroup{}
	for i := range ds.Sockets {
		ws := &ds.Sockets[i]
		if !q.match(ws, aa) {
			continue
		}
		res.Total++
		if q.GroupBy != "" {
			for _, key := range q.groupKey(ws) {
				g := groups[key]
				if g == nil {
					g = &ChainGroup{Key: key}
					groups[key] = g
				}
				g.Sockets++
				if ws.ChainBlocked {
					g.Blocked++
				}
			}
			continue
		}
		if q.Limit <= 0 || len(res.Sockets) < q.Limit {
			res.Sockets = append(res.Sockets, *ws)
		}
	}
	if q.GroupBy != "" {
		res.Groups = make([]ChainGroup, 0, len(groups))
		for _, g := range groups {
			res.Groups = append(res.Groups, *g)
		}
		sort.Slice(res.Groups, func(i, j int) bool {
			if res.Groups[i].Sockets != res.Groups[j].Sockets {
				return res.Groups[i].Sockets > res.Groups[j].Sockets
			}
			return res.Groups[i].Key < res.Groups[j].Key
		})
	}
	return res
}

// LabelRow is one domain's labeler evidence and verdict.
type LabelRow struct {
	Domain string `json:"domain"`
	AAObs  int    `json:"aaObs"`
	NonAA  int    `json:"nonAaObs"`
	CDNObs int    `json:"cdnObs,omitempty"`
	// AA reports the §3.2 threshold verdict: this domain is in D′.
	AA bool `json:"aa"`
}

// LabelsQuery filters the label evidence table.
type LabelsQuery struct {
	Domain string // exact match
	OnlyAA bool   // only domains in D′
}

// Labels lists the observation deltas behind D′, sorted by domain.
func (e *Engine) Labels(q LabelsQuery) []LabelRow {
	_, _, aa := e.snapshot()
	aaObs, nonObs, cdnObs := e.store.ObsCounts()
	domains := map[string]bool{}
	for d := range aaObs {
		domains[d] = true
	}
	for d := range nonObs {
		domains[d] = true
	}
	for d := range cdnObs {
		domains[d] = true
	}
	out := []LabelRow{}
	for d := range domains {
		if q.Domain != "" && d != q.Domain {
			continue
		}
		if q.OnlyAA && !aa[d] {
			continue
		}
		out = append(out, LabelRow{Domain: d, AAObs: aaObs[d], NonAA: nonObs[d], CDNObs: cdnObs[d], AA: aa[d]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Domain < out[j].Domain })
	return out
}

// Table computes one of the paper's tables (1–5) from the snapshot,
// returning the rows as a JSON-able value and the rendered text form.
// topN bounds Tables 2–4 (0 = their render default of 10).
func (e *Engine) Table(n, topN int) (any, string, bool) {
	ds, _, _ := e.snapshot()
	if topN <= 0 {
		topN = 10
	}
	switch n {
	case 1:
		rows := analysis.Table1(ds)
		return rows, analysis.RenderTable1(rows), true
	case 2:
		rows := analysis.Table2(topN, ds)
		return rows, analysis.RenderTable2(rows), true
	case 3:
		rows := analysis.Table3(topN, ds)
		return rows, analysis.RenderTable3(rows), true
	case 4:
		rows := analysis.Table4(topN, ds)
		return rows, analysis.RenderTable4(rows), true
	case 5:
		res := analysis.Table5(ds)
		return res, analysis.RenderTable5(res), true
	}
	return nil, "", false
}
