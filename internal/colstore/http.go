package colstore

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/obs"
)

// NewHandler serves the query API over a store (DESIGN.md §15;
// OPERATIONS.md "Query service" is the runbook):
//
//	GET /tables?table=1..5&format=json|text&top=N
//	GET /sites?domain=&minRank=&maxRank=&withSockets=
//	GET /chains?site=&initiator=&receiver=&contains=&aa=&crossOrigin=&blocked=&groupBy=&limit=
//	GET /labels?domain=&onlyAA=
//	GET /dataset
//	GET /storestats
//	GET /refresh
//
// /dataset streams the full store-derived dataset JSON — byte-identical
// to the merge oracle's WriteJSON, which is how the differential tests
// compare a served store against a merged spool. /refresh rescans the
// store directory for newly sealed segments, the live-query path for a
// read-only store following an active crawl.
func NewHandler(store *Store) http.Handler {
	e := NewEngine(store)
	mux := http.NewServeMux()
	mux.HandleFunc("/tables", func(w http.ResponseWriter, r *http.Request) {
		serve(w, r, func() error {
			n, err := strconv.Atoi(r.URL.Query().Get("table"))
			if err != nil {
				return badRequest("table must be 1..5")
			}
			topN, _ := strconv.Atoi(r.URL.Query().Get("top"))
			rows, text, ok := e.Table(n, topN)
			if !ok {
				return badRequest("table must be 1..5")
			}
			if r.URL.Query().Get("format") == "text" {
				w.Header().Set("Content-Type", "text/plain; charset=utf-8")
				_, werr := fmt.Fprint(w, text)
				return werr
			}
			return writeJSON(w, rows)
		})
	})
	mux.HandleFunc("/sites", func(w http.ResponseWriter, r *http.Request) {
		serve(w, r, func() error {
			q := SitesQuery{Domain: r.URL.Query().Get("domain")}
			q.MinRank, _ = strconv.Atoi(r.URL.Query().Get("minRank"))
			q.MaxRank, _ = strconv.Atoi(r.URL.Query().Get("maxRank"))
			q.WithSockets = r.URL.Query().Get("withSockets") == "true"
			return writeJSON(w, e.Sites(q))
		})
	})
	mux.HandleFunc("/chains", func(w http.ResponseWriter, r *http.Request) {
		serve(w, r, func() error {
			v := r.URL.Query()
			q := ChainsQuery{
				Site:          v.Get("site"),
				Initiator:     v.Get("initiator"),
				Receiver:      v.Get("receiver"),
				ChainContains: v.Get("contains"),
				AA:            AAFilter(v.Get("aa")),
				GroupBy:       v.Get("groupBy"),
			}
			switch q.AA {
			case "", "initiated", "received", "any", "none":
			default:
				return badRequest("aa must be initiated|received|any|none")
			}
			switch q.GroupBy {
			case "", "site", "initiator", "receiver", "pair", "recvClass":
			default:
				return badRequest("groupBy must be site|initiator|receiver|pair|recvClass")
			}
			if s := v.Get("crossOrigin"); s != "" {
				b := s == "true"
				q.CrossOrigin = &b
			}
			if s := v.Get("blocked"); s != "" {
				b := s == "true"
				q.Blocked = &b
			}
			q.Limit, _ = strconv.Atoi(v.Get("limit"))
			return writeJSON(w, e.Chains(q))
		})
	})
	mux.HandleFunc("/labels", func(w http.ResponseWriter, r *http.Request) {
		serve(w, r, func() error {
			q := LabelsQuery{Domain: r.URL.Query().Get("domain"), OnlyAA: r.URL.Query().Get("onlyAA") == "true"}
			return writeJSON(w, e.Labels(q))
		})
	})
	mux.HandleFunc("/dataset", func(w http.ResponseWriter, r *http.Request) {
		serve(w, r, func() error {
			ds, _ := e.Dataset()
			w.Header().Set("Content-Type", "application/json")
			return ds.WriteJSON(w)
		})
	})
	mux.HandleFunc("/storestats", func(w http.ResponseWriter, r *http.Request) {
		serve(w, r, func() error { return writeJSON(w, store.Stats()) })
	})
	mux.HandleFunc("/refresh", func(w http.ResponseWriter, r *http.Request) {
		serve(w, r, func() error {
			if err := store.Rescan(); err != nil {
				return err
			}
			return writeJSON(w, store.Stats())
		})
	})
	return mux
}

// httpError carries a client-facing status.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(msg string) error { return &httpError{status: http.StatusBadRequest, msg: msg} }

// serve wraps a query handler with the store.* request metrics and
// error mapping.
func serve(w http.ResponseWriter, r *http.Request, fn func() error) {
	span := obs.StartSpan(obs.StoreQuery)
	obs.StoreQueries.Inc()
	err := fn()
	span.End()
	if err == nil {
		return
	}
	if he, ok := err.(*httpError); ok {
		http.Error(w, he.msg, he.status)
		return
	}
	http.Error(w, err.Error(), http.StatusInternalServerError)
}

func writeJSON(w http.ResponseWriter, v any) error {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(v)
}
