package colstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// testRecord builds a realistic page record; i varies the page so
// batches hold distinct records, and site groups pages under a domain.
func testRecord(site string, rank, i int) *analysis.PageRecord {
	page := fmt.Sprintf("http://%s/p%d", site, i)
	rec := &analysis.PageRecord{
		Site: site, Rank: rank, PageURL: page,
		HTTP: map[string]*analysis.DomainTraffic{
			"cdn.com": {Domain: "cdn.com", Requests: 4 + i, SentItems: map[string]int{"user-agent": 4}},
			site:      {Domain: site, Requests: 2, RecvClasses: map[string]int{"html": 1}},
		},
		AAObs:    map[string]int{"tracker.com": 1 + i},
		NonAAObs: map[string]int{"cdn.com": 4},
		CDNObs:   map[string]int{"d1abc.cloudfront.net": 1},
	}
	if i%2 == 0 {
		rec.Sockets = []analysis.SocketRecord{{
			Site: site, Rank: rank, PageURL: page,
			URL: "ws://tracker.com/ws", ReceiverDomain: "tracker.com",
			InitiatorDomain: "tracker.com",
			ChainDomains:    []string{site, "tracker.com"},
			ChainURLs:       []string{"http://" + site + "/s.js"},
			CrossOrigin:     true, HandshakeOK: true, ChainBlocked: i%4 == 0,
			FramesSent: 2 + i, FramesRecv: 1,
			SentItems:   []string{"cookies", "user-agent"},
			RecvClasses: []string{"json"},
			AdRefs:      i % 3,
		}}
	}
	return rec
}

func spoolLine(t *testing.T, rec *analysis.PageRecord) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := analysis.EncodeSpoolRecord(&buf, rec); err != nil {
		t.Fatal(err)
	}
	return bytes.TrimSuffix(buf.Bytes(), []byte("\n"))
}

// TestSegmentRoundTrip: records must survive the columnar encode
// byte-exactly in spool-JSON terms, including nil-vs-empty slice
// distinctions (chainDomains marshals null vs []).
func TestSegmentRoundTrip(t *testing.T) {
	recs := []*analysis.PageRecord{
		testRecord("pub.com", 1, 0),
		testRecord("pub.com", 1, 1),
		testRecord("news.com", 2, 0),
		// Edge shapes: no sockets/http/obs at all, and empty-but-non-nil
		// chain slices.
		{Site: "bare.com", Rank: 3, PageURL: "http://bare.com/"},
		{Site: "empty.com", Rank: 4, PageURL: "http://empty.com/",
			Sockets: []analysis.SocketRecord{{
				Site: "empty.com", Rank: 4, PageURL: "http://empty.com/",
				URL: "ws://empty.com/ws", ReceiverDomain: "empty.com",
				InitiatorDomain: "empty.com",
				ChainDomains:    []string{}, ChainURLs: []string{},
			}}},
	}
	data := encodeSegment(3, 7, recs)
	shard, seq, got, err := decodeSegment(data)
	if err != nil {
		t.Fatal(err)
	}
	if shard != 3 || seq != 7 {
		t.Errorf("shard/seq = %d/%d, want 3/7", shard, seq)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		want, gotLine := spoolLine(t, recs[i]), spoolLine(t, got[i])
		if !bytes.Equal(want, gotLine) {
			t.Errorf("record %d round-trip mismatch:\n want %s\n got  %s", i, want, gotLine)
		}
	}

	// Dictionary IDs assign in first-use order, so identical batches
	// encode byte-identically.
	if !bytes.Equal(data, encodeSegment(3, 7, recs)) {
		t.Error("segment encoding is not deterministic")
	}
}

// TestSegmentRejectsDamage: a sealed segment is all-or-nothing — any
// truncation or bit flip must fail decode, never yield partial records.
func TestSegmentRejectsDamage(t *testing.T) {
	recs := []*analysis.PageRecord{testRecord("pub.com", 1, 0), testRecord("pub.com", 1, 1)}
	data := encodeSegment(0, 0, recs)
	for _, cut := range []int{len(data) - 1, len(data) - 9, len(data) / 2, 10, 0} {
		if _, _, _, err := decodeSegment(data[:cut]); err == nil {
			t.Errorf("truncation to %d bytes accepted", cut)
		}
	}
	for _, flip := range []int{9, len(data) / 2, len(data) - 20} {
		bad := bytes.Clone(data)
		bad[flip] ^= 0xff
		if _, _, _, err := decodeSegment(bad); err == nil {
			t.Errorf("bit flip at %d accepted", flip)
		}
	}
}

// storeDataset folds recs through a store (seal cadence per flush) and
// returns the finalized dataset bytes.
func datasetBytes(t *testing.T, ds *analysis.Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ds.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func testMeta() analysis.DatasetMeta {
	return analysis.DatasetMeta{Name: "store-test", Era: "pre", CrawlIndex: 0}
}

func allRecords() []*analysis.PageRecord {
	var recs []*analysis.PageRecord
	for s, site := range []string{"pub.com", "news.com", "shop.com"} {
		for i := 0; i < 4; i++ {
			recs = append(recs, testRecord(site, s+1, i))
		}
	}
	return recs
}

// foldOracle is the reference aggregation: the same records through a
// bare Folder.
func foldOracle(t *testing.T, recs []*analysis.PageRecord) []byte {
	t.Helper()
	f := analysis.NewFolder(testMeta())
	for _, rec := range recs {
		f.Fold(rec)
	}
	ds, _ := f.Finalize()
	return datasetBytes(t, ds)
}

// TestStoreIngestSealReopen: ingest → seal → reopen(Resume) must
// reconstruct the identical dataset from segments alone, and duplicates
// must drop on ingest and on replay.
func TestStoreIngestSealReopen(t *testing.T) {
	dir := t.TempDir()
	recs := allRecords()
	st, err := Open(Config{Dir: dir, NumShards: 4, Meta: testMeta()})
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range recs {
		fresh, err := st.Ingest(rec)
		if err != nil {
			t.Fatal(err)
		}
		if !fresh {
			t.Fatalf("record %d reported duplicate", i)
		}
		// Mid-crawl seals: exercise multi-segment shards.
		if i == 3 || i == 7 {
			if err := st.Seal(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if fresh, err := st.Ingest(testRecord("pub.com", 1, 0)); err != nil || fresh {
		t.Fatalf("duplicate ingest: fresh=%v err=%v", fresh, err)
	}
	liveDS, liveStats := st.Dataset()
	if liveStats.Pages != len(recs) || liveStats.Duplicates != 1 {
		t.Errorf("live stats = %+v", liveStats)
	}
	live := datasetBytes(t, liveDS)
	want := foldOracle(t, recs)
	if !bytes.Equal(live, want) {
		t.Error("live store dataset differs from fold oracle")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(Config{Dir: dir, NumShards: 4, Meta: testMeta(), Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	reDS, reStats := re.Finalize()
	if reStats.Pages != len(recs) {
		t.Errorf("replayed %d pages, want %d (stats %+v)", reStats.Pages, len(recs), reStats)
	}
	if got := datasetBytes(t, reDS); !bytes.Equal(got, want) {
		t.Error("reopened store dataset differs from fold oracle")
	}

	// A second Resume against different meta must refuse.
	if _, err := Open(Config{Dir: dir, NumShards: 4, Meta: analysis.DatasetMeta{Name: "other"}, Resume: true}); err == nil {
		t.Error("resume with wrong crawl identity accepted")
	}
	// Re-open without Resume must refuse too.
	if _, err := Open(Config{Dir: dir, NumShards: 4, Meta: testMeta()}); err == nil {
		t.Error("open over existing store without Resume accepted")
	}
}

// TestStoreAutoSeal: a shard's buffer sealing at SegmentPages without
// any explicit Seal call.
func TestStoreAutoSeal(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Config{Dir: dir, NumShards: 1, Meta: testMeta(), SegmentPages: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if _, err := st.Ingest(testRecord("pub.com", 1, i)); err != nil {
			t.Fatal(err)
		}
	}
	names, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Errorf("auto-seal produced %d segments, want 2: %v", len(names), names)
	}
	if st.Stats().Pending != 1 {
		t.Errorf("pending = %d, want 1", st.Stats().Pending)
	}
}

// TestStoreCrashMidSealRecovers sweeps a SIGKILL through every byte of
// a segment write: a kill mid-seal can only ever leave a partial temp
// file (the rename that publishes a segment is atomic), and for every
// possible torn length the reopened store must come up clean, drop the
// temp, and still hold exactly the previously sealed data.
func TestStoreCrashMidSealRecovers(t *testing.T) {
	recs := allRecords()
	sealed := recs[:6]
	torn := encodeSegment(0, 99, recs[6:])

	base := t.TempDir()
	for cut := 0; cut <= len(torn); cut += len(torn)/64 + 1 {
		dir := filepath.Join(base, fmt.Sprintf("cut-%d", cut))
		st, err := Open(Config{Dir: dir, NumShards: 2, Meta: testMeta()})
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range sealed {
			if _, err := st.Ingest(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		// The kill: a torn temp file, cut bytes long.
		tmp := filepath.Join(dir, segmentName(0, 99)+".tmp-123")
		if err := os.WriteFile(tmp, torn[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := Open(Config{Dir: dir, NumShards: 2, Meta: testMeta(), Resume: true})
		if err != nil {
			t.Fatalf("cut %d: resume failed: %v", cut, err)
		}
		if _, err := os.Stat(tmp); !os.IsNotExist(err) {
			t.Errorf("cut %d: torn temp not cleaned up", cut)
		}
		ds, stats := re.Dataset()
		if stats.Pages != len(sealed) {
			t.Fatalf("cut %d: recovered %d pages, want %d", cut, stats.Pages, len(sealed))
		}
		if got, want := datasetBytes(t, ds), foldOracle(t, sealed); !bytes.Equal(got, want) {
			t.Errorf("cut %d: recovered dataset differs from oracle", cut)
		}
	}
}

// TestStoreTornSealedSegmentIsHardError: a *renamed* segment is
// post-rename + dir-sync, so damage to it means the storage lied; the
// store must refuse to open rather than silently drop pages.
func TestStoreTornSealedSegmentIsHardError(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Config{Dir: dir, NumShards: 1, Meta: testMeta()})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range allRecords() {
		if _, err := st.Ingest(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	names, _ := listSegments(dir)
	if len(names) == 0 {
		t.Fatal("no segments sealed")
	}
	path := filepath.Join(dir, names[0])
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: dir, NumShards: 1, Meta: testMeta(), Resume: true}); err == nil {
		t.Error("torn sealed segment accepted on resume")
	} else if !strings.Contains(err.Error(), "damaged") {
		t.Errorf("unexpected error: %v", err)
	}
	if _, err := OpenRead(dir); err == nil {
		t.Error("torn sealed segment accepted by OpenRead")
	}
}

// TestOpenReadFollowsLiveStore: a read-only store over a live crawl's
// directory sees sealed data, and Rescan picks up later seals.
func TestOpenReadFollowsLiveStore(t *testing.T) {
	dir := t.TempDir()
	recs := allRecords()
	st, err := Open(Config{Dir: dir, NumShards: 2, Meta: testMeta()})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs[:6] {
		if _, err := st.Ingest(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Seal(); err != nil {
		t.Fatal(err)
	}

	ro, err := OpenRead(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, stats := ro.Dataset(); stats.Pages != 6 {
		t.Fatalf("reader sees %d pages, want 6", stats.Pages)
	}
	if _, err := ro.Ingest(recs[6]); err == nil {
		t.Error("read-only store accepted Ingest")
	}
	if err := ro.Seal(); err == nil {
		t.Error("read-only store accepted Seal")
	}

	for _, rec := range recs[6:] {
		if _, err := st.Ingest(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := ro.Rescan(); err != nil {
		t.Fatal(err)
	}
	ds, stats := ro.Dataset()
	if stats.Pages != len(recs) {
		t.Fatalf("after rescan reader sees %d pages, want %d", stats.Pages, len(recs))
	}
	if got, want := datasetBytes(t, ds), foldOracle(t, recs); !bytes.Equal(got, want) {
		t.Error("reader dataset differs from fold oracle after rescan")
	}
}

// TestStoreIngestRaw: the fabric hook decodes and folds a spool line.
func TestStoreIngestRaw(t *testing.T) {
	st, err := Open(Config{Dir: t.TempDir(), NumShards: 2, Meta: testMeta()})
	if err != nil {
		t.Fatal(err)
	}
	rec := testRecord("pub.com", 1, 0)
	if fresh, err := st.IngestRaw(spoolLine(t, rec)); err != nil || !fresh {
		t.Fatalf("IngestRaw: fresh=%v err=%v", fresh, err)
	}
	if fresh, err := st.IngestRaw(spoolLine(t, rec)); err != nil || fresh {
		t.Fatalf("IngestRaw dup: fresh=%v err=%v", fresh, err)
	}
	if _, err := st.IngestRaw([]byte("{torn")); err == nil {
		t.Error("IngestRaw accepted a corrupt line")
	}
}

// TestStoreIngestAllocs pins the ingest hot path's allocation budget.
// Folding allocates for genuinely retained aggregation state (dedup
// key, map growth); the pin catches accidental per-ingest overhead like
// re-encoding or scratch churn.
func TestStoreIngestAllocs(t *testing.T) {
	st, err := Open(Config{Dir: t.TempDir(), NumShards: 4, Meta: testMeta(), SegmentPages: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-build distinct records so the measured loop only ingests.
	const n = 400
	recs := make([]*analysis.PageRecord, n)
	for i := range recs {
		recs[i] = testRecord(fmt.Sprintf("site%d.com", i%37), i%37+1, i/37)
	}
	i := 0
	avg := testing.AllocsPerRun(n, func() {
		if _, err := st.Ingest(recs[i%n]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	// The fold retains sockets, HTTP aggregates, and obs deltas per
	// record; ~30 allocations covers that retained state. Regressions
	// that copy or re-encode per ingest blow well past it.
	if avg > 30 {
		t.Errorf("Ingest allocates %.1f/op, want <= 30", avg)
	}
}
