package colstore

import (
	"fmt"
	"testing"

	"repro/internal/analysis"
)

// benchRecords builds n distinct page records, 6 pages per site, with
// the socket/http/label shape of the round-trip tests. salt keeps
// record identities distinct across benchmark iterations so every
// ingest takes the fresh path.
func benchRecords(n int, salt int) []*analysis.PageRecord {
	recs := make([]*analysis.PageRecord, n)
	for i := range recs {
		site := fmt.Sprintf("site%d-%04d.com", salt, i/6)
		recs[i] = testRecord(site, i/6+1, i%6)
	}
	return recs
}

// BenchmarkStoreIngest is the hot ingest path — fold + shard buffer —
// with sealing deferred, the per-record cost the dispatch pipeline pays
// on every page. TestStoreIngestAllocs pins its allocation budget.
func BenchmarkStoreIngest(b *testing.B) {
	st, err := Open(Config{Dir: b.TempDir(), NumShards: 4, Meta: testMeta(), SegmentPages: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	recs := benchRecords(b.N, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Ingest(recs[i]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreSeal is the group-commit boundary: encode each shard's
// buffered records into a columnar segment and publish it durably
// (write temp, fsync, rename, fsync dir). One iteration seals 256
// records across 4 shards — fsync cost dominates, as in production.
func BenchmarkStoreSeal(b *testing.B) {
	st, err := Open(Config{Dir: b.TempDir(), NumShards: 4, Meta: testMeta(), SegmentPages: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		recs := benchRecords(256, i+1)
		b.StartTimer()
		for _, rec := range recs {
			if _, err := st.Ingest(rec); err != nil {
				b.Fatal(err)
			}
		}
		if err := st.Seal(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreOpenReplay is crash recovery and the wsquery cold
// start: open the sealed segments read-only, replay them through the
// fold, and snapshot the canonical dataset.
func BenchmarkStoreOpenReplay(b *testing.B) {
	dir := b.TempDir()
	st, err := Open(Config{Dir: dir, NumShards: 4, Meta: testMeta(), SegmentPages: 128})
	if err != nil {
		b.Fatal(err)
	}
	for _, rec := range benchRecords(1536, 0) {
		if _, err := st.Ingest(rec); err != nil {
			b.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ro, err := OpenRead(dir)
		if err != nil {
			b.Fatal(err)
		}
		if ds, _ := ro.Dataset(); len(ds.Sites) == 0 {
			b.Fatal("replay produced no sites")
		}
	}
}

// BenchmarkStoreQuery is the steady-state query service: a chains
// group-by over the version-cached snapshot, the request shape the
// HTTP API serves while a crawl runs.
func BenchmarkStoreQuery(b *testing.B) {
	st, err := Open(Config{Dir: b.TempDir(), NumShards: 4, Meta: testMeta(), SegmentPages: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	for _, rec := range benchRecords(1536, 0) {
		if _, err := st.Ingest(rec); err != nil {
			b.Fatal(err)
		}
	}
	e := NewEngine(st)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := e.Chains(ChainsQuery{GroupBy: "pair", AA: "received"})
		if res.Total == 0 {
			b.Fatal("query matched nothing")
		}
	}
}
