// Package colstore is the embedded append-only columnar dataset store:
// the streaming replacement for the post-hoc JSONL-spool → MergeShards
// → one-big-JSON pipeline, built for crawls too large to re-read at the
// end.
//
// PageRecords are ingested incrementally as the crawl runs. Each record
// folds straight into the incremental Table 1–5 aggregation (the same
// analysis.Folder fold the merge path uses, so the derived dataset is
// byte-identical by construction) and is buffered on its site's shard.
// At every group-commit boundary — and whenever a shard's buffer
// reaches SegmentPages — the shard's buffered records are sealed into
// an immutable dictionary-encoded segment file: written to a temp file,
// fsynced, renamed into place, and made durable with a parent-directory
// sync (SyncDir documents that contract). A sealed segment is therefore
// all-or-nothing: recovery either sees the complete CRC-verified file
// or no file at all, and anything in between is a hard error, never a
// skip.
//
// Recovery replays sealed segments through the fold in (shard, seq)
// order. Records deduplicate by (site, pageURL) with first-occurrence
// wins — exactly like the spool merge — so a crawl killed mid-run and
// resumed converges on the same dataset: sites the checkpoint marked
// done were sealed before the checkpoint was written (dispatch seals at
// the same boundary it flushes the spool), and everything else is
// re-crawled deterministically and deduplicated on re-ingest.
//
// The read side (query.go, http.go) serves filter/group-by queries over
// snapshots of the fold; OpenRead opens a store read-only — of a live
// crawl included — and Rescan picks up newly sealed segments.
package colstore

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/analysis"
	"repro/internal/obs"
)

// manifestName is the store's identity file, written once at creation.
const manifestName = "store.json"

// manifestVersion is the on-disk store format version.
const manifestVersion = 1

// manifest pins the store's identity so a resume (or a reader) cannot
// mix segments from a different crawl into one dataset.
type manifest struct {
	Version    int    `json:"version"`
	Name       string `json:"name"`
	Era        string `json:"era,omitempty"`
	CrawlIndex int    `json:"crawlIndex"`
	NumShards  int    `json:"numShards"`
}

// Config parameterizes Open.
type Config struct {
	// Dir is the store directory (created if missing).
	Dir string
	// NumShards is the shard count; use the spool's shard count so
	// store segments and spool shards partition the site space the same
	// way.
	NumShards int
	// Meta names the crawl; it becomes the dataset identity.
	Meta analysis.DatasetMeta
	// Resume accepts an existing store directory and replays its sealed
	// segments. Without Resume the directory must be empty of store
	// state.
	Resume bool
	// SegmentPages caps a shard's buffered records before an automatic
	// seal (default 512). Explicit Seal calls flush smaller segments at
	// group-commit boundaries.
	SegmentPages int
}

// Store is the embedded columnar store. All methods are safe for
// concurrent use; Ingest runs on crawl worker goroutines.
type Store struct {
	dir      string
	shards   int
	meta     analysis.DatasetMeta
	segPages int
	readonly bool

	folder *analysis.Folder

	mu       sync.Mutex
	pending  [][]*analysis.PageRecord // per shard; guarded by mu
	seq      []int                    // per shard, next segment seq; guarded by mu
	segments int                      // sealed segments; guarded by mu
	consumed map[string]bool          // segment files folded; guarded by mu
	version  uint64                   // bumped per fold; guarded by mu
	pages    int                      // distinct records folded; guarded by mu
	dups     int                      // duplicates dropped; guarded by mu
}

// Open creates or resumes a writable store.
func Open(cfg Config) (*Store, error) {
	if cfg.NumShards <= 0 {
		cfg.NumShards = 1
	}
	if cfg.SegmentPages <= 0 {
		cfg.SegmentPages = 512
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("colstore: open: %w", err)
	}
	s := &Store{
		dir:      cfg.Dir,
		shards:   cfg.NumShards,
		meta:     cfg.Meta,
		segPages: cfg.SegmentPages,
		folder:   analysis.NewFolder(cfg.Meta),
		pending:  make([][]*analysis.PageRecord, cfg.NumShards),
		seq:      make([]int, cfg.NumShards),
		consumed: map[string]bool{},
	}
	m, err := loadManifest(cfg.Dir)
	switch {
	case err != nil:
		return nil, err
	case m == nil:
		if err := s.writeManifest(); err != nil {
			return nil, err
		}
	case !cfg.Resume:
		return nil, fmt.Errorf("colstore: open %s: store already exists (crawl %q); pass Resume to continue it", cfg.Dir, m.Name)
	default:
		if err := s.checkManifest(m); err != nil {
			return nil, err
		}
	}
	// A crash can leave a temp file behind mid-seal; it was never
	// renamed, so it holds nothing the store vouched for. Remove it
	// rather than let droppings accumulate.
	if err := s.removeTemps(); err != nil {
		return nil, err
	}
	if err := s.replaySegments(); err != nil {
		return nil, err
	}
	return s, nil
}

// OpenRead opens an existing store read-only — including one a live
// crawl is still writing. It replays the segments sealed so far; Rescan
// folds in segments sealed since. Ingest and Seal fail on a read-only
// store.
func OpenRead(dir string) (*Store, error) {
	m, err := loadManifest(dir)
	if err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("colstore: open %s: no store manifest", dir)
	}
	meta := analysis.DatasetMeta{Name: m.Name, Era: m.Era, CrawlIndex: m.CrawlIndex}
	s := &Store{
		dir:      dir,
		shards:   m.NumShards,
		meta:     meta,
		readonly: true,
		folder:   analysis.NewFolder(meta),
		pending:  make([][]*analysis.PageRecord, m.NumShards),
		seq:      make([]int, m.NumShards),
		consumed: map[string]bool{},
	}
	if err := s.replaySegments(); err != nil {
		return nil, err
	}
	return s, nil
}

func loadManifest(dir string) (*manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("colstore: read manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("colstore: corrupt manifest in %s: %w", dir, err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("colstore: %s: unsupported store version %d (this build reads v%d)", dir, m.Version, manifestVersion)
	}
	return &m, nil
}

func (s *Store) writeManifest() error {
	m := manifest{
		Version:    manifestVersion,
		Name:       s.meta.Name,
		Era:        s.meta.Era,
		CrawlIndex: s.meta.CrawlIndex,
		NumShards:  s.shards,
	}
	data, err := json.Marshal(&m)
	if err != nil {
		return fmt.Errorf("colstore: encode manifest: %w", err)
	}
	return s.publish(filepath.Join(s.dir, manifestName), append(data, '\n'))
}

func (s *Store) checkManifest(m *manifest) error {
	switch {
	case m.Name != s.meta.Name || m.Era != s.meta.Era || m.CrawlIndex != s.meta.CrawlIndex:
		return fmt.Errorf("colstore: %s holds crawl %q era %q index %d, not %q/%q/%d — point at the original crawl's store or start fresh", s.dir, m.Name, m.Era, m.CrawlIndex, s.meta.Name, s.meta.Era, s.meta.CrawlIndex)
	case m.NumShards != s.shards:
		return fmt.Errorf("colstore: %s has %d shards, configured %d", s.dir, m.NumShards, s.shards)
	}
	return nil
}

// publish atomically writes data at path under the rename-durability
// contract: temp file, fsync, rename, parent-dir sync.
func (s *Store) publish(path string, data []byte) (err error) {
	tmp, err := os.CreateTemp(s.dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("colstore: publish %s: %w", path, err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err = tmp.Write(data); err != nil {
		return fmt.Errorf("colstore: publish %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("colstore: publish %s: sync: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("colstore: publish %s: close: %w", path, err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("colstore: publish %s: rename: %w", path, err)
	}
	return SyncDir(s.dir)
}

func (s *Store) removeTemps() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("colstore: scan %s: %w", s.dir, err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			if err := os.Remove(filepath.Join(s.dir, e.Name())); err != nil {
				return fmt.Errorf("colstore: remove stale temp: %w", err)
			}
		}
	}
	return nil
}

// segmentName formats a sealed segment's file name; lexical order is
// (shard, seq) order.
func segmentName(shard, seq int) string {
	return fmt.Sprintf("seg-%03d-%06d.col", shard, seq)
}

// listSegments returns the sealed segment files in (shard, seq) order.
func listSegments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("colstore: scan %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if strings.HasPrefix(n, "seg-") && strings.HasSuffix(n, ".col") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

// replaySegments folds every not-yet-consumed sealed segment. A sealed
// segment that fails validation is a hard error: seals are atomic and
// dir-synced, so a torn or corrupt one means the storage lied, and
// silently skipping it would drop pages the checkpoint vouched for.
func (s *Store) replaySegments() error {
	names, err := listSegments(s.dir)
	if err != nil {
		return err
	}
	for _, name := range names {
		s.mu.Lock()
		seen := s.consumed[name]
		s.mu.Unlock()
		if seen {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			return fmt.Errorf("colstore: read segment: %w", err)
		}
		shard, seq, recs, err := decodeSegment(data)
		if err != nil {
			return fmt.Errorf("colstore: sealed segment %s is damaged: %w", name, err)
		}
		if shard < 0 || shard >= s.shards {
			return fmt.Errorf("colstore: segment %s claims shard %d of %d", name, shard, s.shards)
		}
		s.mu.Lock()
		for _, rec := range recs {
			if s.folder.Fold(rec) {
				s.pages++
			} else {
				s.dups++
			}
			s.version++
		}
		if seq >= s.seq[shard] {
			s.seq[shard] = seq + 1
		}
		s.consumed[name] = true
		s.segments++
		s.mu.Unlock()
	}
	return nil
}

// ShardFor maps a site domain to its shard, with the same hash the
// spool uses so the two partitions agree.
func (s *Store) ShardFor(domain string) int {
	h := fnv.New64a()
	h.Write([]byte(domain))
	return int(h.Sum64() % uint64(s.shards))
}

// Ingest folds one page record into the live aggregation and buffers it
// for its shard's next segment. It reports whether the record was fresh
// (false = duplicate of an already-ingested (site, pageURL), dropped).
// The record is retained by reference until sealed; callers must not
// mutate it afterwards — the dispatch ingest path hands over the same
// immutable records it spools.
func (s *Store) Ingest(rec *analysis.PageRecord) (bool, error) {
	if s.readonly {
		return false, fmt.Errorf("colstore: store %s is read-only", s.dir)
	}
	fresh := s.folder.Fold(rec)
	shard, full := -1, false
	s.mu.Lock()
	s.version++
	if fresh {
		s.pages++
		shard = s.ShardFor(rec.Site)
		s.pending[shard] = append(s.pending[shard], rec)
		full = len(s.pending[shard]) >= s.segPages
	} else {
		s.dups++
	}
	s.mu.Unlock()
	if !fresh {
		obs.StoreDuplicates.Inc()
		return false, nil
	}
	obs.StorePages.Inc()
	if full {
		return true, s.sealShard(shard)
	}
	return true, nil
}

// IngestRaw decodes one spool line and ingests it: the fabric
// coordinator's hook, mirroring Spooler.AppendRaw.
func (s *Store) IngestRaw(line []byte) (bool, error) {
	rec, err := analysis.DecodeSpoolLine(line)
	if err != nil {
		return false, err
	}
	return s.Ingest(rec)
}

// Seal writes every shard's buffered records into sealed segment files.
// Call it at group-commit boundaries: dispatch seals in writeCheckpoint
// after the spool flush and before the checkpoint is published, so a
// checkpoint never marks a site done whose pages are not in a durable
// segment.
func (s *Store) Seal() error {
	if s.readonly {
		return fmt.Errorf("colstore: store %s is read-only", s.dir)
	}
	for shard := 0; shard < s.shards; shard++ {
		if err := s.sealShard(shard); err != nil {
			return err
		}
	}
	return nil
}

// sealShard seals one shard's buffer (no-op when empty).
func (s *Store) sealShard(shard int) error {
	s.mu.Lock()
	recs := s.pending[shard]
	seq := s.seq[shard]
	if len(recs) > 0 {
		s.seq[shard] = seq + 1
		s.pending[shard] = nil
	}
	s.mu.Unlock()
	if len(recs) == 0 {
		return nil
	}

	span := obs.StartSpan(obs.StoreSeal)
	name := segmentName(shard, seq)
	data := encodeSegment(shard, seq, recs)
	if err := s.publish(filepath.Join(s.dir, name), data); err != nil {
		// The segment never became durable; put the records back so a
		// later Seal retries them. Prepend keeps intra-shard order.
		s.mu.Lock()
		s.pending[shard] = append(recs, s.pending[shard]...)
		s.seq[shard] = seq
		s.mu.Unlock()
		return err
	}
	span.End()
	s.mu.Lock()
	s.consumed[name] = true
	s.segments++
	s.mu.Unlock()
	obs.StoreSeals.Inc()
	obs.StoreSegments.Add(1)
	obs.StoreBytes.Add(int64(len(data)))
	return nil
}

// Rescan folds any segments sealed since the store was opened (or last
// rescanned) — the read-only live-query path. Writable stores never
// need it: they folded every record at ingest.
func (s *Store) Rescan() error {
	return s.replaySegments()
}

// Dataset snapshots the store-derived dataset: canonical, immutable,
// and — after the same records — byte-identical to MergeShards' output.
// Callable at any point during the crawl.
func (s *Store) Dataset() (*analysis.Dataset, analysis.MergeStats) {
	ds, stats := s.folder.Snapshot()
	stats.Shards = s.shards
	return ds, stats
}

// Finalize closes out the crawl's aggregation, reporting merge metrics
// exactly like a spool merge would (merge.pages, merge.duplicates,
// stage.merge). Call once, when the crawl is done.
func (s *Store) Finalize() (*analysis.Dataset, analysis.MergeStats) {
	ds, stats := s.folder.Finalize()
	stats.Shards = s.shards
	return ds, stats
}

// ObsCounts exposes the folded labeler observation deltas for the query
// service's labels endpoint.
func (s *Store) ObsCounts() (aa, non, cdn map[string]int) {
	return s.folder.ObsCounts()
}

// Meta returns the crawl identity the store was opened with.
func (s *Store) Meta() analysis.DatasetMeta { return s.meta }

// Version increases with every folded record; the query layer uses it
// to cache snapshots.
func (s *Store) Version() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// Stats describes the store's physical and logical state.
type Stats struct {
	Dir       string `json:"dir"`
	NumShards int    `json:"numShards"`
	Segments  int    `json:"segments"`
	Pages     int    `json:"pages"`
	Dups      int    `json:"duplicates"`
	Pending   int    `json:"pendingRecords"`
	ReadOnly  bool   `json:"readOnly"`
}

// Stats reports the store's current state.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	pending := 0
	for _, p := range s.pending {
		pending += len(p)
	}
	return Stats{
		Dir:       s.dir,
		NumShards: s.shards,
		Segments:  s.segments,
		Pages:     s.pages,
		Dups:      s.dups,
		Pending:   pending,
		ReadOnly:  s.readonly,
	}
}

// Close seals any buffered records. The store holds no file handles
// between operations, so sealing is all closing means.
func (s *Store) Close() error {
	if s.readonly {
		return nil
	}
	return s.Seal()
}

// ReadSegment decodes one sealed segment file — the low-level tool the
// crash tests and wsanalyze-style tooling use.
func ReadSegment(path string) ([]*analysis.PageRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("colstore: read segment: %w", err)
	}
	_, _, recs, err := decodeSegment(data)
	return recs, err
}

var _ io.Closer = (*Store)(nil)
