// Package browser implements the synthetic browser the crawler drives:
// it loads pages over real HTTP, parses them into DOM trees, executes the
// script DSL (producing dynamic inclusion chains), opens genuine
// WebSocket connections, and emits the devtools event stream the
// inclusion-tree builder consumes — mirroring how the paper instrumented
// stock Chrome through the Chrome Debugging Protocol (§3.1).
//
// It also hosts the extension layer. The webRequest bug is modeled at the
// version boundary: browsers with Version < 58 never dispatch WebSocket
// requests to extensions, exactly like Chromium issue 129353.
package browser

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/content"
	"repro/internal/devtools"
	"repro/internal/dom"
	"repro/internal/faultnet"
	"repro/internal/htmlparse"
	"repro/internal/obs"
	"repro/internal/payload"
	"repro/internal/script"
	"repro/internal/urlutil"
	"repro/internal/webrequest"
	"repro/internal/wsproto"
)

// PatchedVersion is the Chrome release that fixed the webRequest bug.
const PatchedVersion = 58

// Extension installs webRequest listeners into a browser.
type Extension interface {
	// Name identifies the extension in blocked-request events.
	Name() string
	// Install registers the extension's listeners.
	Install(reg *webrequest.Registry)
}

// SocketGuard is the optional content-script capability some blockers
// shipped as a WRB workaround (uBO-Extra, §2.3): a page-level wrapper
// around the WebSocket constructor that can veto a connection before
// the network stack — and therefore before the buggy webRequest gate —
// ever sees it. Extensions that implement it get consulted for every
// socket regardless of browser version.
type SocketGuard interface {
	// AllowSocket reports whether the page may open the socket. rule,
	// when non-empty, names the filter rule behind a veto.
	AllowSocket(pageURL, socketURL string) (allow bool, rule string)
}

// Config parameterizes a browser instance.
type Config struct {
	// Version is the Chrome version being modeled. Versions below 58
	// carry the webRequest bug.
	Version int
	// Seed drives the client profile and masking keys.
	Seed int64
	// HTTPClient performs resource fetches; it must route virtual hosts
	// (see webserver.Client). Required unless Fetch is set.
	HTTPClient *http.Client
	// Fetch, when set, performs resource fetches in-process instead of
	// through HTTPClient (see webserver.Fetch). The function must be
	// observationally identical to a wire fetch — same status, content
	// type, and body bytes — which internal/core's pipeline differential
	// test proves for the webserver implementation. The returned body
	// may alias server-owned bytes and must be treated as read-only;
	// the browser never mutates response bodies.
	Fetch func(u *urlutil.URL, postBody []byte) (status int, contentType string, body []byte, err error)
	// ResolveWS maps host:port to a dial address for WebSockets
	// (see webserver.Resolver). Required for pages that open sockets.
	ResolveWS func(hostport string) string
	// MaxScriptDepth caps dynamic inclusion chains (default 6).
	MaxScriptDepth int
	// MaxFrameDepth caps iframe nesting (default 3).
	MaxFrameDepth int
	// FollowAdRefs fetches ad images referenced in WebSocket responses
	// (the Lockerdome pattern). Default true.
	FollowAdRefs bool
	// SocketTimeout bounds each WebSocket session: the dial, and then
	// each subsequent message send/receive (the deadline refreshes per
	// message, so long-lived sockets stay up while traffic flows).
	// Default 10s.
	SocketTimeout time.Duration

	// Fault, when enabled, degrades every WebSocket transport conn this
	// browser dials (internal/faultnet). Per-socket schedules derive
	// from (FaultSeed, Seed, dial sequence), so a given crawl seed and
	// fault seed reproduce the same schedule on the same socket.
	Fault     faultnet.Profile
	FaultSeed int64
	// DialRetries is the number of extra WebSocket dial attempts after
	// a transient dial failure (default 0: single attempt). Attempts
	// back off exponentially from DialRetryBackoff (default 25ms) with
	// seeded jitter; the jitter RNG is separate from the behavioral
	// RNG, so enabling retries does not perturb fault-free crawls.
	DialRetries      int
	DialRetryBackoff time.Duration

	// ReuseScratch reuses per-page storage across Visit calls on this
	// browser: the trace and its event slab, the ID allocator, the
	// request-header maps, and the link scratch. Page results are
	// byte-identical to the default fresh-allocation path (the pipeline
	// differential test in internal/core proves it), but ownership
	// tightens: the PageResult returned by Visit — its Trace, events,
	// bodies, and Links — is valid only until the next Visit on the
	// same Browser. The crawler honors that window (links are copied
	// and OnPage completes before the next visit); callers that retain
	// results across visits must leave this off.
	ReuseScratch bool
}

// Browser is one browser instance (one synthetic user). It is not safe
// for concurrent Visit calls; crawl workers each own a Browser.
type Browser struct {
	cfg    Config
	reg    *webrequest.Registry
	guards []guardEntry
	state  *payload.ClientState
	rng    *rand.Rand
	// cookies maps registrable domains to this user's cookie string.
	cookies map[string]string

	// dialSeq numbers transport dials (including retries) so per-socket
	// fault seeds are stable; backoffRng jitters dial-retry backoff.
	// Both stay outside b.rng's stream: they draw nothing unless a dial
	// actually fails, keeping fault-free crawls byte-identical.
	dialSeq    int64
	backoffRng *rand.Rand

	// scratch is the reused per-page storage, non-nil only under
	// Config.ReuseScratch. Browsers are single-visit-at-a-time, so the
	// scratch needs no lock.
	scratch *visitScratch
}

// visitScratch is one browser's reusable per-page storage. Everything
// here is recycled by begin() at the top of each Visit; see
// Config.ReuseScratch for the ownership contract.
type visitScratch struct {
	trace  devtools.Trace
	bus    *devtools.Bus
	alloc  devtools.IDAllocator
	load   pageLoad
	result PageResult
	seen   map[string]bool // extractLinks dedup, cleared per page

	// headerMaps is the arena of request-header maps handed out this
	// page; maps are retained inside trace events until the next page's
	// begin(), then cleared and reused.
	headerMaps []map[string]string
	headerUsed int
}

// begin recycles the scratch for a new page load and returns its
// embedded pageLoad, wired to the reused trace, bus, and allocator.
func (s *visitScratch) begin(b *Browser, ctx context.Context, rawURL string, u *urlutil.URL) *pageLoad {
	s.trace.Reset()
	s.alloc.Reset()
	s.headerUsed = 0
	clear(s.seen)
	links := s.result.Links
	clear(links)
	s.result = PageResult{URL: rawURL, Trace: &s.trace, Links: links[:0]}
	s.load = pageLoad{b: b, ctx: ctx, bus: s.bus, alloc: &s.alloc, result: &s.result, pageURL: u}
	return &s.load
}

// header hands out a request-header map: a cleared arena map under
// ReuseScratch, a fresh one otherwise.
func (b *Browser) header() map[string]string {
	s := b.scratch
	if s == nil {
		return make(map[string]string, 3)
	}
	if s.headerUsed == len(s.headerMaps) {
		s.headerMaps = append(s.headerMaps, make(map[string]string, 3))
	}
	m := s.headerMaps[s.headerUsed]
	s.headerUsed++
	clear(m)
	return m
}

// guardEntry pairs a SocketGuard with its extension name for blocked
// events.
type guardEntry struct {
	name  string
	guard SocketGuard
}

// New builds a browser with the given extensions installed. The
// webRequest bug is armed automatically for versions before 58.
func New(cfg Config, exts ...Extension) *Browser {
	if cfg.MaxScriptDepth == 0 {
		cfg.MaxScriptDepth = 6
	}
	if cfg.MaxFrameDepth == 0 {
		cfg.MaxFrameDepth = 3
	}
	if cfg.SocketTimeout == 0 {
		cfg.SocketTimeout = 10 * time.Second
	}
	if cfg.DialRetryBackoff == 0 {
		cfg.DialRetryBackoff = 25 * time.Millisecond
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := &Browser{
		cfg:     cfg,
		reg:     webrequest.NewRegistry(cfg.Version >= PatchedVersion),
		state:   payload.NewClientState(rng),
		rng:     rng,
		cookies: map[string]string{},
		backoffRng: rand.New(rand.NewSource(
			faultnet.DeriveSeed(cfg.FaultSeed, cfg.Seed, 0x7e77))),
	}
	if cfg.ReuseScratch {
		b.scratch = &visitScratch{bus: devtools.NewBus(), seen: map[string]bool{}}
		b.scratch.trace.Attach(b.scratch.bus)
	}
	b.cfg.FollowAdRefs = true
	for _, ext := range exts {
		ext.Install(b.reg)
		if g, ok := ext.(SocketGuard); ok {
			b.guards = append(b.guards, guardEntry{name: ext.Name(), guard: g})
		}
	}
	return b
}

// Version returns the modeled Chrome version.
func (b *Browser) Version() int { return b.cfg.Version }

// UserAgent returns the browser's User-Agent string.
func (b *Browser) UserAgent() string { return b.state.UserAgent }

// PageResult is the outcome of one page load.
type PageResult struct {
	// URL is the page's URL.
	URL string
	// Document is the parsed DOM of the top-level frame.
	Document *dom.Node
	// Trace is the devtools event log of the entire load.
	Trace *devtools.Trace
	// Links are same-site links found on the page, absolutized.
	Links []string
	// Blocked counts requests cancelled by extensions.
	Blocked int
	// NetErrors counts failed fetches.
	NetErrors int
}

// pageLoad carries per-load state.
type pageLoad struct {
	b       *Browser
	ctx     context.Context
	bus     *devtools.Bus
	alloc   *devtools.IDAllocator
	result  *PageResult
	pageURL *urlutil.URL
	doc     *dom.Node
}

// Visit loads a page and everything it includes, returning the DOM, the
// trace, and the extracted links.
func (b *Browser) Visit(ctx context.Context, rawURL string) (*PageResult, error) {
	u, err := urlutil.Parse(rawURL)
	if err != nil {
		return nil, err
	}
	var load *pageLoad
	if b.scratch != nil {
		load = b.scratch.begin(b, ctx, rawURL, u)
	} else {
		trace := devtools.NewTrace()
		bus := devtools.NewBus()
		trace.Attach(bus)
		load = &pageLoad{
			b:       b,
			ctx:     ctx,
			bus:     bus,
			alloc:   &devtools.IDAllocator{},
			result:  &PageResult{URL: rawURL, Trace: trace},
			pageURL: u,
		}
	}
	frameID := load.alloc.NextFrame()
	load.bus.Emit(devtools.FrameNavigated{FrameID: frameID, URL: rawURL, Initiator: devtools.ParserInitiator(frameID)})

	doc, ok := load.fetchDocument(frameID, u, devtools.ParserInitiator(frameID))
	if !ok {
		return load.result, fmt.Errorf("browser: failed to load document %s", rawURL)
	}
	load.doc = doc
	load.result.Document = doc
	// Session-replay DOM exfiltration serializes the live document.
	b.state.DOMSource = func() string { return doc.OuterHTML() }
	load.processDocument(frameID, u, doc, 0)
	load.extractLinks(doc)
	return load.result, nil
}

// fetchDocument gates, fetches, and parses an HTML document.
func (l *pageLoad) fetchDocument(frameID devtools.FrameID, u *urlutil.URL, init devtools.Initiator) (*dom.Node, bool) {
	fetchSpan := obs.StartSpan(obs.StageFetch)
	body, _, ok := l.request(u, devtools.ResourceDocument, frameID, init, "", nil)
	fetchSpan.End()
	if !ok {
		return nil, false
	}
	parseSpan := obs.StartSpan(obs.StageParse)
	doc := htmlparse.Parse(string(body))
	parseSpan.End()
	return doc, true
}

// processDocument walks a parsed document in order, loading subresources
// and executing scripts.
func (l *pageLoad) processDocument(frameID devtools.FrameID, docURL *urlutil.URL, doc *dom.Node, frameDepth int) {
	doc.Walk(func(n *dom.Node) bool {
		if n.Type != dom.ElementNode {
			return true
		}
		switch n.Tag {
		case "script":
			if src := n.Attr("src"); src != "" {
				l.loadScript(frameID, docURL, src, devtools.ParserInitiator(frameID), 0)
			} else if body := n.InnerText(); strings.TrimSpace(body) != "" {
				l.runScriptBody(frameID, docURL, docURL.String()+"#inline", body, devtools.ParserInitiator(frameID), 0, true)
			}
		case "img":
			if src := n.Attr("src"); src != "" {
				if u, err := resolveRef(docURL, src); err == nil {
					l.request(u, devtools.ResourceImage, frameID, devtools.ParserInitiator(frameID), "", nil)
				}
			}
		case "link":
			if n.Attr("rel") == "stylesheet" {
				if u, err := resolveRef(docURL, n.Attr("href")); err == nil {
					l.request(u, devtools.ResourceStylesheet, frameID, devtools.ParserInitiator(frameID), "", nil)
				}
			}
		case "iframe":
			if src := n.Attr("src"); src != "" {
				l.loadFrame(frameID, docURL, src, devtools.ParserInitiator(frameID), frameDepth)
			}
		}
		return true
	})
}

// loadFrame loads an iframe document and processes it recursively.
func (l *pageLoad) loadFrame(parentFrame devtools.FrameID, baseURL *urlutil.URL, src string, init devtools.Initiator, depth int) {
	if depth >= l.b.cfg.MaxFrameDepth {
		return
	}
	u, err := resolveRef(baseURL, src)
	if err != nil {
		return
	}
	body, _, ok := l.request(u, devtools.ResourceSubFrame, parentFrame, init, "", nil)
	if !ok {
		return
	}
	childID := l.alloc.NextFrame()
	l.bus.Emit(devtools.FrameNavigated{
		FrameID: childID, ParentFrameID: parentFrame, URL: u.String(), Initiator: init,
	})
	l.processDocument(childID, u, htmlparse.Parse(string(body)), depth+1)
}

// loadScript fetches a remote script, emits scriptParsed, and executes
// its program if it carries one.
func (l *pageLoad) loadScript(frameID devtools.FrameID, baseURL *urlutil.URL, src string, init devtools.Initiator, depth int) {
	if depth >= l.b.cfg.MaxScriptDepth {
		return
	}
	u, err := resolveRef(baseURL, src)
	if err != nil {
		return
	}
	body, _, ok := l.request(u, devtools.ResourceScript, frameID, init, "", nil)
	if !ok {
		return
	}
	l.runScriptBody(frameID, baseURL, u.String(), string(body), init, depth, false)
}

// runScriptBody registers the script with the debugger domain and
// executes its embedded program.
func (l *pageLoad) runScriptBody(frameID devtools.FrameID, baseURL *urlutil.URL, url, body string, init devtools.Initiator, depth int, inline bool) {
	scriptID := l.alloc.NextScript()
	l.bus.Emit(devtools.ScriptParsed{
		ScriptID: scriptID, URL: url, FrameID: frameID, Initiator: init, Inline: inline,
	})
	prog, err := script.Decode(body)
	if err != nil || prog == nil {
		return
	}
	self := devtools.ScriptInitiator(scriptID)
	for _, op := range prog.Ops {
		switch op.Do {
		case script.OpIncludeScript:
			l.loadScript(frameID, baseURL, op.URL, self, depth+1)
		case script.OpLoadImage:
			if u, err := resolveRef(baseURL, op.URL); err == nil {
				l.request(u, devtools.ResourceImage, frameID, self, "", nil)
			}
		case script.OpHTTPBeacon:
			l.sendBeacon(frameID, baseURL, op, self)
		case script.OpInsertIframe:
			l.loadFrame(frameID, baseURL, op.URL, self, 0)
		case script.OpOpenWebSocket:
			l.openWebSocket(frameID, op, self)
		}
	}
}

// sendBeacon POSTs synthesized tracking data over HTTP (type XHR).
func (l *pageLoad) sendBeacon(frameID devtools.FrameID, baseURL *urlutil.URL, op script.Op, init devtools.Initiator) {
	u, err := resolveRef(baseURL, op.URL)
	if err != nil {
		return
	}
	var body []byte
	for i, spec := range op.Send {
		if i > 0 {
			body = append(body, '&')
		}
		body = append(body, l.b.synthesize(spec)...)
	}
	cookie := ""
	if op.SendCookie {
		cookie = l.b.cookieFor(u.RegistrableDomain())
	}
	l.request(u, devtools.ResourceXHR, frameID, init, cookie, body)
}

// request gates one HTTP request through the extension layer, performs
// it, and emits the network events. It returns the response body.
func (l *pageLoad) request(u *urlutil.URL, typ devtools.ResourceType, frameID devtools.FrameID, init devtools.Initiator, cookie string, postBody []byte) ([]byte, int, bool) {
	reqID := l.alloc.NextRequest()
	details := webrequest.Details{
		RequestID:     string(reqID),
		URL:           u.String(),
		Type:          typ,
		FrameID:       frameID,
		FirstPartyURL: l.pageURL.String(),
	}
	obs.BrowserRequests.Inc()
	verdict := l.b.reg.Dispatch(details)
	if verdict.Cancelled {
		l.result.Blocked++
		obs.BrowserBlocked.Inc()
		l.bus.Emit(devtools.RequestBlocked{
			RequestID: reqID, URL: u.String(), Type: typ, FrameID: frameID,
			Initiator: init, Extension: verdict.Extension, Rule: verdict.Rule,
		})
		return nil, 0, false
	}
	// Plain subresource loads go to cookieless CDN hosts; only
	// explicit tracking requests (beacons, sockets) carry cookies.
	header := l.b.header()
	header["User-Agent"] = l.b.state.UserAgent
	if cookie != "" {
		header["Cookie"] = cookie
	}
	header["Referer"] = l.pageURL.String()
	l.bus.Emit(devtools.RequestWillBeSent{
		RequestID: reqID, URL: u.String(), Type: typ, FrameID: frameID,
		Initiator: init, FirstPartyURL: l.pageURL.String(), Header: header, Body: postBody,
	})
	status, mime, body, err := l.b.doHTTP(l.ctx, u, header, postBody)
	if err != nil {
		l.result.NetErrors++
		return nil, 0, false
	}
	respBody := body
	if typ == devtools.ResourceImage || typ == devtools.ResourceStylesheet {
		// Bodies of bulk media are classified but not retained in full.
		if len(respBody) > 256 {
			respBody = respBody[:256]
		}
	}
	l.bus.Emit(devtools.ResponseReceived{
		RequestID: reqID, URL: u.String(), Status: status, MimeType: mime,
		BodySize: len(body), Body: respBody,
	})
	return body, status, status >= 200 && status < 400
}

func (b *Browser) doHTTP(ctx context.Context, u *urlutil.URL, header map[string]string, postBody []byte) (int, string, []byte, error) {
	if b.cfg.Fetch != nil {
		return b.cfg.Fetch(u, postBody)
	}
	method := http.MethodGet
	var bodyReader io.Reader
	if postBody != nil {
		method = http.MethodPost
		bodyReader = strings.NewReader(string(postBody))
	}
	req, err := http.NewRequestWithContext(ctx, method, u.String(), bodyReader)
	if err != nil {
		return 0, "", nil, err
	}
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := b.cfg.HTTPClient.Do(req)
	if err != nil {
		return 0, "", nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return 0, "", nil, err
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), body, nil
}

// synthesize renders one message spec into payload bytes.
func (b *Browser) synthesize(spec script.MessageSpec) []byte {
	if spec.Text != "" {
		return []byte(spec.Text)
	}
	return payload.Synthesize(spec.Kinds, b.state, b.rng)
}

// cookieFor returns (creating if needed) this user's cookie string for a
// registrable domain.
func (b *Browser) cookieFor(domain string) string {
	if c, ok := b.cookies[domain]; ok {
		return c
	}
	c := fmt.Sprintf("uid=%08x; _sess=%08x", b.rng.Uint32(), b.rng.Uint32())
	b.cookies[domain] = c
	return c
}

// existingCookie returns the cookie for a domain only if one was already
// established.
func (b *Browser) existingCookie(domain string) string { return b.cookies[domain] }

// openWebSocket performs the full socket lifecycle for one
// open_websocket op: extension gate (subject to the WRB), handshake,
// message exchange, close — emitting the Network.webSocket* events.
func (l *pageLoad) openWebSocket(frameID devtools.FrameID, op script.Op, init devtools.Initiator) {
	u, err := urlutil.Parse(op.URL)
	if err != nil || !u.IsWebSocket() {
		return
	}
	sockID := l.alloc.NextSocket()

	// Content-script guards run inside the page, so they fire before —
	// and independently of — the webRequest layer: this is the uBO-Extra
	// mitigation that worked even while the WRB was live.
	for _, g := range l.b.guards {
		allow, rule := g.guard.AllowSocket(l.pageURL.String(), u.String())
		if !allow {
			l.result.Blocked++
			obs.SocketsBlocked.Inc()
			l.bus.Emit(devtools.RequestBlocked{
				RequestID: devtools.RequestID(sockID), URL: u.String(),
				Type: devtools.ResourceWebSocket, FrameID: frameID,
				Initiator: init, Extension: g.name, Rule: rule,
			})
			return
		}
	}

	details := webrequest.Details{
		RequestID:     string(sockID),
		URL:           u.String(),
		Type:          devtools.ResourceWebSocket,
		FrameID:       frameID,
		FirstPartyURL: l.pageURL.String(),
	}
	verdict := l.b.reg.Dispatch(details)
	if verdict.Cancelled {
		l.result.Blocked++
		obs.SocketsBlocked.Inc()
		l.bus.Emit(devtools.RequestBlocked{
			RequestID: devtools.RequestID(sockID), URL: u.String(),
			Type: devtools.ResourceWebSocket, FrameID: frameID,
			Initiator: init, Extension: verdict.Extension, Rule: verdict.Rule,
		})
		return
	}

	obs.SocketsOpened.Inc()
	l.bus.Emit(devtools.WebSocketCreated{
		SocketID: sockID, URL: u.String(), FrameID: frameID,
		Initiator: init, FirstPartyURL: l.pageURL.String(),
	})
	header := l.b.header()
	header["User-Agent"] = l.b.state.UserAgent
	header["Origin"] = l.pageURL.Origin()
	if op.SendCookie {
		header["Cookie"] = l.b.cookieFor(u.RegistrableDomain())
	}
	l.bus.Emit(devtools.WebSocketWillSendHandshakeRequest{SocketID: sockID, Header: header})

	httpHeader := http.Header{}
	for k, v := range header {
		httpHeader.Set(k, v)
	}
	dialer := wsproto.Dialer{
		ResolveAddr: l.b.cfg.ResolveWS,
		Rand:        l.b.rng,
		Header:      httpHeader,
	}
	if l.b.cfg.Fault.Enabled() {
		// Visits are sequential per browser, so the dial sequence — and
		// with it each socket's fault schedule — is a pure function of
		// the (crawl seed, fault seed) pair, not of goroutine timing.
		dialer.WrapConn = func(nc net.Conn) net.Conn {
			l.b.dialSeq++
			return faultnet.WrapConn(nc, l.b.cfg.Fault,
				faultnet.DeriveSeed(l.b.cfg.FaultSeed, l.b.cfg.Seed, l.b.dialSeq))
		}
	}
	conn, err := l.dialWebSocket(&dialer, u.String())
	if err != nil {
		l.result.NetErrors++
		l.bus.Emit(devtools.WebSocketHandshakeResponseReceived{SocketID: sockID, Status: 0})
		l.bus.Emit(devtools.WebSocketClosed{SocketID: sockID, Code: wsproto.CloseAbnormal})
		return
	}
	defer conn.Close()
	l.bus.Emit(devtools.WebSocketHandshakeResponseReceived{SocketID: sockID, Status: 101})

	// Every message send/receive below runs under a fresh SocketTimeout
	// deadline: the timeout bounds *inactivity*, not session length, so
	// a long-lived live-chat socket survives as long as traffic flows
	// while a wedged peer still fails within one timeout.
	idle := l.b.cfg.SocketTimeout

	// Send the script's messages.
	for _, spec := range op.Send {
		data := l.b.synthesize(spec)
		opcode := wsproto.OpText
		if spec.Binary {
			opcode = wsproto.OpBinary
		}
		_ = conn.SetWriteDeadline(time.Now().Add(idle))
		if err := conn.WriteMessage(opcode, data); err != nil {
			break
		}
		l.bus.Emit(devtools.WebSocketFrameSent{SocketID: sockID, Opcode: int(opcode), Payload: data})
	}
	_ = conn.SetWriteDeadline(time.Time{})
	// Read the expected server pushes.
	var adRefs []content.AdRef
	for i := 0; i < op.Expect; i++ {
		_ = conn.SetReadDeadline(time.Now().Add(idle))
		opcode, msg, err := conn.ReadMessage()
		if err != nil {
			break
		}
		// ReadMessage returns a conn-owned buffer valid only until the
		// next read; the inclusion tree retains frame payloads for the
		// Table 5 content analysis, so the event gets its own copy.
		msg = append([]byte(nil), msg...)
		l.bus.Emit(devtools.WebSocketFrameReceived{SocketID: sockID, Opcode: int(opcode), Payload: msg})
		if l.b.cfg.FollowAdRefs {
			adRefs = append(adRefs, content.ExtractAdRefs(msg)...)
		}
	}
	_ = conn.Close()
	l.bus.Emit(devtools.WebSocketClosed{SocketID: sockID, Code: wsproto.CloseNormal})

	// The Lockerdome pattern: creatives referenced in socket responses
	// are fetched like any script-initiated image — and since the CDN
	// host is unlisted, blockers never see a reason to stop them.
	for _, ref := range adRefs {
		if au, err := urlutil.Parse(ref.ImageURL); err == nil {
			l.request(au, devtools.ResourceImage, frameID, init, "", nil)
		}
	}
}

// dialWebSocket performs the WebSocket handshake with up to DialRetries
// extra attempts on transient failure, backing off exponentially with
// seeded jitter between attempts. Each attempt runs under its own
// SocketTimeout; the page context bounds the whole loop, so retries
// never outlive the visit.
func (l *pageLoad) dialWebSocket(dialer *wsproto.Dialer, rawURL string) (*wsproto.Conn, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		ctx, cancel := context.WithTimeout(l.ctx, l.b.cfg.SocketTimeout)
		conn, _, err := dialer.Dial(ctx, rawURL)
		cancel()
		if err == nil {
			return conn, nil
		}
		lastErr = err
		if attempt >= l.b.cfg.DialRetries || l.ctx.Err() != nil {
			return nil, lastErr
		}
		obs.DialRetries.Inc()
		backoff := l.b.cfg.DialRetryBackoff << uint(attempt)
		backoff += time.Duration(l.b.backoffRng.Int63n(int64(backoff)))
		timer := time.NewTimer(backoff)
		select {
		case <-l.ctx.Done():
			timer.Stop()
			return nil, lastErr
		case <-timer.C:
		}
	}
}

// extractLinks collects same-site links from the document.
func (l *pageLoad) extractLinks(doc *dom.Node) {
	seen := map[string]bool{}
	if s := l.b.scratch; s != nil {
		seen = s.seen // cleared by begin()
	}
	for _, a := range doc.GetElementsByTag("a") {
		href := a.Attr("href")
		if href == "" {
			continue
		}
		u, err := resolveRef(l.pageURL, href)
		if err != nil {
			continue
		}
		if !urlutil.SameParty(u.Host, l.pageURL.Host) {
			continue
		}
		s := u.String()
		if !seen[s] {
			seen[s] = true
			l.result.Links = append(l.result.Links, s)
		}
	}
}

// resolveRef resolves href against base: absolute URLs pass through,
// path-absolute and relative references resolve against the base.
func resolveRef(base *urlutil.URL, href string) (*urlutil.URL, error) {
	if strings.Contains(href, "://") {
		return urlutil.Parse(href)
	}
	if strings.HasPrefix(href, "//") {
		return urlutil.Parse(base.Scheme + ":" + href)
	}
	if strings.HasPrefix(href, "/") {
		return urlutil.Parse(base.Origin() + href)
	}
	// Relative reference: resolve against the base path's directory.
	dir := base.Path
	if i := strings.LastIndexByte(dir, '/'); i >= 0 {
		dir = dir[:i+1]
	}
	return urlutil.Parse(base.Origin() + dir + href)
}
