package browser

// Failure-injection tests: the crawler meets the real web's worth of
// broken servers, so a misbehaving WebSocket endpoint must never hang a
// page load or corrupt the trace — it must surface as a NetError or a
// closed socket and let the crawl continue.

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/devtools"
	"repro/internal/script"
	"repro/internal/wsproto"
)

// misbehaviour selects what the hostile WebSocket server does.
type misbehaviour int

const (
	behaveGarbageAfterHandshake misbehaviour = iota
	behaveCloseMidFrame
	behaveNeverRespond
	behaveRejectHandshake
)

// hostileWSServer accepts raw TCP and misbehaves per the configured
// mode. It returns the listener address.
func hostileWSServer(t *testing.T, mode misbehaviour) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				defer nc.Close()
				switch mode {
				case behaveNeverRespond:
					// Accept the TCP connection and say nothing.
					time.Sleep(30 * time.Second)
				case behaveRejectHandshake:
					readHeaders(nc)
					fmt.Fprintf(nc, "HTTP/1.1 403 Forbidden\r\nConnection: close\r\n\r\n")
				case behaveGarbageAfterHandshake:
					key := readHeaders(nc)
					writeUpgrade(nc, key)
					// Reserved bits set, nonsense opcode, then junk.
					nc.Write([]byte{0xFF, 0x7F, 0x01, 0x02, 0x03, 0x04})
				case behaveCloseMidFrame:
					key := readHeaders(nc)
					writeUpgrade(nc, key)
					// Header promises 200 bytes; deliver 3 and vanish.
					nc.Write([]byte{0x81, 126, 0x00, 200, 'a', 'b', 'c'})
				}
			}(nc)
		}
	}()
	return ln.Addr().String()
}

// readHeaders consumes the request head and returns the client's
// Sec-WebSocket-Key.
func readHeaders(nc net.Conn) string {
	buf := make([]byte, 4096)
	var all []byte
	key := ""
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	for {
		n, err := nc.Read(buf)
		if n > 0 {
			all = append(all, buf[:n]...)
		}
		if err != nil || strings.Contains(string(all), "\r\n\r\n") {
			break
		}
	}
	for _, line := range strings.Split(string(all), "\r\n") {
		if strings.HasPrefix(strings.ToLower(line), "sec-websocket-key:") {
			key = strings.TrimSpace(line[len("sec-websocket-key:"):])
		}
	}
	return key
}

func writeUpgrade(nc net.Conn, key string) {
	fmt.Fprintf(nc, "HTTP/1.1 101 Switching Protocols\r\nUpgrade: websocket\r\nConnection: Upgrade\r\nSec-WebSocket-Accept: %s\r\n\r\n",
		wsproto.ComputeAccept(key))
}

// resilienceEnv serves a one-page site whose script opens a socket to
// ws://bad.example/x, with the resolver pointing that host at the
// hostile server.
func resilienceEnv(t *testing.T, mode misbehaviour, expect int) *Browser {
	t.Helper()
	badAddr := hostileWSServer(t, mode)

	prog := &script.Program{Ops: []script.Op{
		{Do: script.OpOpenWebSocket, URL: fmt.Sprintf("ws://bad.example/x?n=%d", expect),
			Send:   []script.MessageSpec{{Kinds: []string{"ua"}}},
			Expect: expect},
	}}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		fmt.Fprint(w, `<!DOCTYPE html><html><head><script src="/s.js"></script></head><body><h1>t</h1></body></html>`)
	})
	mux.HandleFunc("/s.js", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/javascript")
		fmt.Fprint(w, prog.MustEncode())
	})
	hs := httptest.NewServer(mux)
	t.Cleanup(hs.Close)

	httpAddr := strings.TrimPrefix(hs.URL, "http://")
	client := &http.Client{Transport: &http.Transport{
		DialContext: func(ctx context.Context, network, _ string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, network, httpAddr)
		},
	}}
	return New(Config{
		Version:       57,
		Seed:          1,
		HTTPClient:    client,
		SocketTimeout: 1 * time.Second,
		ResolveWS: func(hostport string) string {
			if strings.HasPrefix(hostport, "bad.example") {
				return badAddr
			}
			return hostport
		},
	})
}

func visitWithDeadline(t *testing.T, b *Browser) *PageResult {
	t.Helper()
	done := make(chan *PageResult, 1)
	errc := make(chan error, 1)
	go func() {
		res, err := b.Visit(context.Background(), "http://site.example/")
		if err != nil {
			errc <- err
			return
		}
		done <- res
	}()
	select {
	case res := <-done:
		return res
	case err := <-errc:
		t.Fatalf("visit failed outright: %v", err)
	case <-time.After(15 * time.Second):
		t.Fatal("page load hung on misbehaving websocket server")
	}
	return nil
}

func socketEvents(res *PageResult) (created, closed int) {
	for _, ev := range res.Trace.Events {
		switch ev.(type) {
		case devtools.WebSocketCreated:
			created++
		case devtools.WebSocketClosed:
			closed++
		}
	}
	return
}

func TestResilienceGarbageFrames(t *testing.T) {
	b := resilienceEnv(t, behaveGarbageAfterHandshake, 2)
	res := visitWithDeadline(t, b)
	created, closed := socketEvents(res)
	if created != 1 || closed != 1 {
		t.Errorf("socket events: created=%d closed=%d", created, closed)
	}
}

func TestResilienceCloseMidFrame(t *testing.T) {
	b := resilienceEnv(t, behaveCloseMidFrame, 2)
	res := visitWithDeadline(t, b)
	created, closed := socketEvents(res)
	if created != 1 || closed != 1 {
		t.Errorf("socket events: created=%d closed=%d", created, closed)
	}
}

func TestResilienceUnresponsiveServer(t *testing.T) {
	b := resilienceEnv(t, behaveNeverRespond, 1)
	start := time.Now()
	res := visitWithDeadline(t, b)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("timeout took %v, socket timeout is 1s", elapsed)
	}
	if res.NetErrors == 0 {
		t.Error("unresponsive server not counted as a network error")
	}
	// Handshake never completed: created + failed-handshake + closed.
	for _, ev := range res.Trace.Events {
		if h, ok := ev.(devtools.WebSocketHandshakeResponseReceived); ok && h.Status == 101 {
			t.Error("handshake reported success against a silent server")
		}
	}
}

func TestResilienceRejectedHandshake(t *testing.T) {
	b := resilienceEnv(t, behaveRejectHandshake, 1)
	res := visitWithDeadline(t, b)
	if res.NetErrors == 0 {
		t.Error("rejected handshake not counted")
	}
	created, closed := socketEvents(res)
	if created != 1 || closed != 1 {
		t.Errorf("socket events: created=%d closed=%d", created, closed)
	}
}

// TestResilienceHTTPErrors: scripts and images that 500 or vanish must
// not break the page.
func TestResilienceHTTPErrors(t *testing.T) {
	var hits atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		fmt.Fprint(w, `<!DOCTYPE html><html><body>
			<script src="/broken.js"></script>
			<img src="/missing.png">
			<h1>still here</h1></body></html>`)
	})
	mux.HandleFunc("/broken.js", func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	hs := httptest.NewServer(mux)
	defer hs.Close()

	httpAddr := strings.TrimPrefix(hs.URL, "http://")
	client := &http.Client{Transport: &http.Transport{
		DialContext: func(ctx context.Context, network, _ string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, network, httpAddr)
		},
	}}
	b := New(Config{Version: 57, Seed: 1, HTTPClient: client})
	res, err := b.Visit(context.Background(), "http://site.example/")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Document.GetElementsByTag("h1")) != 1 {
		t.Error("page content lost")
	}
	if hits.Load() != 1 {
		t.Errorf("broken script fetched %d times", hits.Load())
	}
}
