package browser

// Tests for the socket-loader hardening that rides with the faultnet
// work: the per-socket timeout must bound *inactivity* (refreshing per
// message) rather than whole-session length, and transient dial
// failures must be retried with seeded backoff without duplicating
// trace events.

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/devtools"
	"repro/internal/script"
)

// slowPushWSServer completes the WebSocket handshake, then pushes n
// text frames spaced `gap` apart — a live-chat-shaped peer whose
// session outlives any single-message gap many times over.
func slowPushWSServer(t *testing.T, n int, gap time.Duration) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				defer nc.Close()
				key := readHeaders(nc)
				writeUpgrade(nc, key)
				for i := 0; i < n; i++ {
					time.Sleep(gap)
					msg := fmt.Sprintf("push-%d", i)
					frame := append([]byte{0x81, byte(len(msg))}, msg...)
					if _, err := nc.Write(frame); err != nil {
						return
					}
				}
				// Hold the conn open until the client closes.
				buf := make([]byte, 256)
				nc.SetReadDeadline(time.Now().Add(10 * time.Second))
				for {
					if _, err := nc.Read(buf); err != nil {
						return
					}
				}
			}(nc)
		}
	}()
	return ln.Addr().String()
}

// flakyWSServer kills the first `failures` connections before the
// handshake completes, then behaves: handshake + one pushed frame.
func flakyWSServer(t *testing.T, failures int, attempts *atomic.Int64) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			a := attempts.Add(1)
			go func(nc net.Conn, attempt int64) {
				defer nc.Close()
				if attempt <= int64(failures) {
					// Transient failure: drop the conn mid-handshake.
					return
				}
				key := readHeaders(nc)
				writeUpgrade(nc, key)
				msg := "served"
				_, _ = nc.Write(append([]byte{0x81, byte(len(msg))}, msg...))
				buf := make([]byte, 256)
				nc.SetReadDeadline(time.Now().Add(10 * time.Second))
				for {
					if _, err := nc.Read(buf); err != nil {
						return
					}
				}
			}(nc, a)
		}
	}()
	return ln.Addr().String()
}

// socketEnv serves a one-page site whose script opens one socket to
// ws://feed.example routed to wsAddr.
func socketEnv(t *testing.T, wsAddr string, expect int, cfg Config) *Browser {
	t.Helper()
	prog := &script.Program{Ops: []script.Op{
		{Do: script.OpOpenWebSocket, URL: fmt.Sprintf("ws://feed.example/live?n=%d", expect),
			Send:   []script.MessageSpec{{Kinds: []string{"ua"}}},
			Expect: expect},
	}}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		fmt.Fprint(w, `<!DOCTYPE html><html><head><script src="/s.js"></script></head><body><h1>t</h1></body></html>`)
	})
	mux.HandleFunc("/s.js", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/javascript")
		fmt.Fprint(w, prog.MustEncode())
	})
	hs := httptest.NewServer(mux)
	t.Cleanup(hs.Close)

	httpAddr := strings.TrimPrefix(hs.URL, "http://")
	cfg.HTTPClient = &http.Client{Transport: &http.Transport{
		DialContext: func(ctx context.Context, network, _ string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, network, httpAddr)
		},
	}}
	cfg.ResolveWS = func(hostport string) string {
		if strings.HasPrefix(hostport, "feed.example") {
			return wsAddr
		}
		return hostport
	}
	if cfg.Version == 0 {
		cfg.Version = 57
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return New(cfg)
}

func countFrames(res *PageResult) (received int) {
	for _, ev := range res.Trace.Events {
		if _, ok := ev.(devtools.WebSocketFrameReceived); ok {
			received++
		}
	}
	return
}

// TestSocketTimeoutRefreshesPerMessage: three pushes spaced 250ms with
// a 400ms SocketTimeout. The session runs ~750ms — under the old
// single absolute deadline it died after 400ms with at most one
// message; with per-message refresh all three arrive.
func TestSocketTimeoutRefreshesPerMessage(t *testing.T) {
	addr := slowPushWSServer(t, 3, 250*time.Millisecond)
	b := socketEnv(t, addr, 3, Config{SocketTimeout: 400 * time.Millisecond})
	res := visitWithDeadline(t, b)
	if got := countFrames(res); got != 3 {
		t.Errorf("received %d frames, want 3 (idle deadline not refreshing?)", got)
	}
	created, closed := socketEvents(res)
	if created != 1 || closed != 1 {
		t.Errorf("socket events: created=%d closed=%d", created, closed)
	}
}

// TestSocketTimeoutStillBoundsInactivity: the refresh must not disable
// the timeout — a server that goes quiet forever still fails within
// one idle interval.
func TestSocketTimeoutStillBoundsInactivity(t *testing.T) {
	// One push, then silence; the script expects two messages.
	addr := slowPushWSServer(t, 1, 10*time.Millisecond)
	b := socketEnv(t, addr, 2, Config{SocketTimeout: 300 * time.Millisecond})
	start := time.Now()
	res := visitWithDeadline(t, b)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("silent socket held the page for %v", elapsed)
	}
	if got := countFrames(res); got != 1 {
		t.Errorf("received %d frames, want 1", got)
	}
}

// TestDialRetryRecoversTransientFailure: the first connection dies
// mid-handshake; with DialRetries the socket succeeds on the second
// attempt, and the trace still shows exactly one socket lifecycle.
func TestDialRetryRecoversTransientFailure(t *testing.T) {
	var attempts atomic.Int64
	addr := flakyWSServer(t, 1, &attempts)
	b := socketEnv(t, addr, 1, Config{
		SocketTimeout:    2 * time.Second,
		DialRetries:      2,
		DialRetryBackoff: 5 * time.Millisecond,
	})
	res := visitWithDeadline(t, b)
	if attempts.Load() != 2 {
		t.Errorf("server saw %d connection attempts, want 2", attempts.Load())
	}
	if res.NetErrors != 0 {
		t.Errorf("NetErrors = %d after a recovered dial", res.NetErrors)
	}
	ok101 := false
	for _, ev := range res.Trace.Events {
		if h, is := ev.(devtools.WebSocketHandshakeResponseReceived); is && h.Status == 101 {
			ok101 = true
		}
	}
	if !ok101 {
		t.Error("no successful handshake in trace")
	}
	if got := countFrames(res); got != 1 {
		t.Errorf("received %d frames, want 1", got)
	}
	created, closed := socketEvents(res)
	if created != 1 || closed != 1 {
		t.Errorf("retries duplicated socket events: created=%d closed=%d", created, closed)
	}
}

// TestDialRetryExhaustion: when every attempt fails, the socket is
// accounted a NetError after exactly 1+DialRetries attempts — one
// created/closed pair, no hang.
func TestDialRetryExhaustion(t *testing.T) {
	var attempts atomic.Int64
	addr := flakyWSServer(t, 1<<30, &attempts)
	b := socketEnv(t, addr, 1, Config{
		SocketTimeout:    500 * time.Millisecond,
		DialRetries:      2,
		DialRetryBackoff: 5 * time.Millisecond,
	})
	res := visitWithDeadline(t, b)
	if attempts.Load() != 3 {
		t.Errorf("server saw %d attempts, want 3 (1 + 2 retries)", attempts.Load())
	}
	if res.NetErrors == 0 {
		t.Error("exhausted retries not counted as a NetError")
	}
	created, closed := socketEvents(res)
	if created != 1 || closed != 1 {
		t.Errorf("socket events: created=%d closed=%d", created, closed)
	}
}
