package browser

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/adblock"
	"repro/internal/devtools"
	"repro/internal/filterlist"
	"repro/internal/urlutil"
	"repro/internal/webgen"
	"repro/internal/webserver"
)

// env spins up a world and server shared by the tests in this file.
type env struct {
	world  *webgen.World
	server *webserver.Server
}

func newEnv(t *testing.T, era webgen.Era) *env {
	t.Helper()
	w := webgen.NewWorld(webgen.Config{Seed: 99, NumPublishers: 120, Era: era})
	s, err := webserver.Start(w)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return &env{world: w, server: s}
}

func (e *env) browser(version int, exts ...Extension) *Browser {
	return New(Config{
		Version:    version,
		Seed:       42,
		HTTPClient: e.server.Client(),
		ResolveWS:  e.server.Resolver(),
	}, exts...)
}

// findSocketPublisher returns a publisher whose crawl produces at least
// one WebSocket, by actually visiting pages.
func findSocketPublisher(t *testing.T, e *env, b *Browser) (string, *PageResult) {
	t.Helper()
	for _, p := range e.world.Publishers {
		for page := 0; page <= 3 && page <= p.NumPages; page++ {
			url := "http://" + p.Domain + "/"
			if page > 0 {
				url = "http://" + p.Domain + "/page/" + itoa(page)
			}
			res, err := b.Visit(context.Background(), url)
			if err != nil {
				continue
			}
			for _, ev := range res.Trace.Events {
				if _, ok := ev.(devtools.WebSocketCreated); ok {
					return p.Domain, res
				}
			}
		}
	}
	t.Fatal("no publisher produced a WebSocket in the sample")
	return "", nil
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestVisitBasicPage(t *testing.T) {
	e := newEnv(t, webgen.EraPrePatch)
	b := e.browser(57)
	pub := e.world.Publishers[0]
	res, err := b.Visit(context.Background(), "http://"+pub.Domain+"/")
	if err != nil {
		t.Fatal(err)
	}
	if res.Document == nil || len(res.Document.GetElementsByTag("h1")) == 0 {
		t.Error("document not parsed")
	}
	if len(res.Links) == 0 {
		t.Error("no links extracted")
	}
	for _, l := range res.Links {
		u := urlutil.MustParse(l)
		if !urlutil.SameParty(u.Host, pub.Domain) {
			t.Errorf("cross-site link extracted: %s", l)
		}
	}
	// The trace must contain the document request and the first-party
	// script execution.
	var sawDoc, sawScript bool
	for _, ev := range res.Trace.Events {
		switch ev := ev.(type) {
		case devtools.RequestWillBeSent:
			if ev.Type == devtools.ResourceDocument {
				sawDoc = true
			}
		case devtools.ScriptParsed:
			if strings.Contains(ev.URL, "/js/app.js") {
				sawScript = true
			}
		}
	}
	if !sawDoc || !sawScript {
		t.Errorf("trace missing document (%v) or app script (%v)", sawDoc, sawScript)
	}
}

func TestWebSocketLifecycleEvents(t *testing.T) {
	e := newEnv(t, webgen.EraPrePatch)
	b := e.browser(57)
	_, res := findSocketPublisher(t, e, b)

	states := map[devtools.SocketID][]string{}
	for _, ev := range res.Trace.Events {
		switch ev := ev.(type) {
		case devtools.WebSocketCreated:
			states[ev.SocketID] = append(states[ev.SocketID], "created")
		case devtools.WebSocketWillSendHandshakeRequest:
			states[ev.SocketID] = append(states[ev.SocketID], "handshake")
			if ev.Header["User-Agent"] == "" {
				t.Error("handshake missing User-Agent")
			}
			if !strings.HasPrefix(ev.Header["Origin"], "http://") {
				t.Error("handshake missing Origin")
			}
		case devtools.WebSocketHandshakeResponseReceived:
			states[ev.SocketID] = append(states[ev.SocketID], "response")
			if ev.Status != 101 {
				t.Errorf("handshake status %d", ev.Status)
			}
		case devtools.WebSocketClosed:
			states[ev.SocketID] = append(states[ev.SocketID], "closed")
		}
	}
	if len(states) == 0 {
		t.Fatal("no socket lifecycles")
	}
	for id, seq := range states {
		if seq[0] != "created" || seq[len(seq)-1] != "closed" {
			t.Errorf("socket %s lifecycle %v", id, seq)
		}
	}
}

// TestSocketChildOfScript verifies the Figure 2 property: the socket's
// initiator is the script that created it, and that script has its own
// inclusion ancestry.
func TestSocketChildOfScript(t *testing.T) {
	e := newEnv(t, webgen.EraPrePatch)
	b := e.browser(57)
	_, res := findSocketPublisher(t, e, b)

	scripts := map[devtools.ScriptID]devtools.ScriptParsed{}
	for _, ev := range res.Trace.Events {
		if sp, ok := ev.(devtools.ScriptParsed); ok {
			scripts[sp.ScriptID] = sp
		}
	}
	checked := 0
	for _, ev := range res.Trace.Events {
		ws, ok := ev.(devtools.WebSocketCreated)
		if !ok {
			continue
		}
		if ws.Initiator.Type != "script" {
			t.Errorf("socket %s initiated by %q, want script", ws.SocketID, ws.Initiator.Type)
			continue
		}
		if _, ok := scripts[ws.Initiator.ScriptID]; !ok {
			t.Errorf("socket %s initiator script %s not in trace", ws.SocketID, ws.Initiator.ScriptID)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no sockets checked")
	}
}

func TestWRBEndToEnd(t *testing.T) {
	e := newEnv(t, webgen.EraPrePatch)
	easylist := filterlist.Parse("easylist", e.world.EasyListText())
	easyprivacy := filterlist.Parse("easyprivacy", e.world.EasyPrivacyText())
	mitigation := filterlist.Parse("ws-mitigation", e.world.MitigationRulesText())

	// Find a page that opens sockets to A&A receivers whose initiating
	// scripts are NOT themselves blockable (partial-rules chat/replay
	// services): only there can the $websocket mitigation rules show
	// their effect, since fully-listed initiators lose their scripts
	// before any socket opens.
	isAAReceiver := func(rawURL string) bool {
		u, err := urlutil.Parse(rawURL)
		if err != nil {
			return false
		}
		c := e.world.CompanyByDomain(u.RegistrableDomain())
		return c != nil && c.AA && c.AcceptsWS && c.PartialRules
	}
	group := filterlist.NewGroup(easylist, easyprivacy)
	plain := e.browser(57)
	var domain string
	var base *PageResult
search:
	for _, p := range e.world.Publishers {
		for page := 0; page <= 3 && page <= p.NumPages; page++ {
			url := "http://" + p.Domain + "/"
			if page > 0 {
				url = "http://" + p.Domain + "/page/" + itoa(page)
			}
			res, err := plain.Visit(context.Background(), url)
			if err != nil {
				continue
			}
			scriptURLs := map[devtools.ScriptID]string{}
			for _, ev := range res.Trace.Events {
				if sp, ok := ev.(devtools.ScriptParsed); ok {
					scriptURLs[sp.ScriptID] = sp.URL
				}
			}
			for _, ev := range res.Trace.Events {
				ws, ok := ev.(devtools.WebSocketCreated)
				if !ok || !isAAReceiver(ws.URL) {
					continue
				}
				// The initiating script itself must survive blocking,
				// otherwise the socket never exists post-patch.
				su, err := urlutil.Parse(scriptURLs[ws.Initiator.ScriptID])
				if err != nil {
					continue
				}
				d := group.Match(filterlist.Request{URL: su, Type: devtools.ResourceScript, PageHost: p.Domain})
				if d.Blocked {
					continue
				}
				domain, base = url, res
				break search
			}
		}
	}
	if base == nil {
		t.Fatal("no publisher opened sockets to A&A receivers from unblockable scripts")
	}
	countSockets := func(res *PageResult) (created, blocked int) {
		for _, ev := range res.Trace.Events {
			switch ev := ev.(type) {
			case devtools.WebSocketCreated:
				created++
			case devtools.RequestBlocked:
				if ev.Type == devtools.ResourceWebSocket {
					blocked++
				}
			}
		}
		return
	}
	baseCreated, _ := countSockets(base)
	if baseCreated == 0 {
		t.Fatal("baseline page opened no sockets")
	}

	// Pre-patch browser + blocker with ws-mitigation rules: the WRB
	// means no WebSocket is ever dispatched, so none can be blocked.
	pre := e.browser(57, adblock.New("ublock", adblock.AllURLs, easylist, easyprivacy, mitigation))
	resPre, err := pre.Visit(context.Background(), domain)
	if err != nil {
		t.Fatal(err)
	}
	_, blockedPre := countSockets(resPre)
	if blockedPre != 0 {
		t.Errorf("pre-patch browser blocked %d websockets through the WRB", blockedPre)
	}

	// Post-patch browser, same extension: $websocket rules now bite.
	post := New(Config{Version: 58, Seed: 42, HTTPClient: e.server.Client(), ResolveWS: e.server.Resolver()},
		adblock.New("ublock", adblock.AllURLs, easylist, easyprivacy, mitigation))
	resPost, err := post.Visit(context.Background(), domain)
	if err != nil {
		t.Fatal(err)
	}
	createdPost, blockedPost := countSockets(resPost)
	if blockedPost == 0 {
		t.Errorf("post-patch browser blocked no websockets (created %d)", createdPost)
	}
}

func TestHTTPOnlyPatternsMissSockets(t *testing.T) {
	e := newEnv(t, webgen.EraPrePatch)
	mitigation := filterlist.Parse("ws-mitigation", e.world.MitigationRulesText())
	plain := e.browser(57)
	domain, _ := findSocketPublisher(t, e, plain)

	// Patched browser but http/https-only registration: sockets sail
	// through (the Franken et al. finding).
	b := New(Config{Version: 58, Seed: 42, HTTPClient: e.server.Client(), ResolveWS: e.server.Resolver()},
		adblock.New("naive", adblock.HTTPOnlyPatterns, mitigation))
	res, err := b.Visit(context.Background(), "http://"+domain+"/")
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range res.Trace.Events {
		if rb, ok := ev.(devtools.RequestBlocked); ok && rb.Type == devtools.ResourceWebSocket {
			t.Errorf("http-only patterns blocked a websocket: %s", rb.URL)
		}
	}
}

func TestBlockerCancelsHTTPTrackers(t *testing.T) {
	e := newEnv(t, webgen.EraPrePatch)
	easylist := filterlist.Parse("easylist", e.world.EasyListText())
	blocker := adblock.New("abp", adblock.HTTPOnlyPatterns, easylist)
	b := e.browser(57, blocker)

	// Visit several pages; EasyList-domain scripts must get cancelled.
	visited := 0
	for _, p := range e.world.Publishers {
		hasListed := false
		for _, c := range p.Services {
			if c.EasyList && !c.PartialRules {
				hasListed = true
			}
		}
		if !hasListed {
			continue
		}
		if _, err := b.Visit(context.Background(), "http://"+p.Domain+"/"); err != nil {
			t.Fatal(err)
		}
		visited++
		if visited >= 3 {
			break
		}
	}
	if visited == 0 {
		t.Skip("no publisher with fully-listed services")
	}
	if blocker.BlockedCount() == 0 {
		t.Error("blocker cancelled nothing on ad-heavy pages")
	}
}

func TestFrameEvents(t *testing.T) {
	e := newEnv(t, webgen.EraPrePatch)
	b := e.browser(57)
	// Find a page with an iframe ad slot.
	for _, p := range e.world.Publishers {
		for page := 0; page <= p.NumPages && page <= 5; page++ {
			if len(e.world.PlanFor(p, page).IframeURLs) == 0 {
				continue
			}
			url := "http://" + p.Domain + "/"
			if page > 0 {
				url = "http://" + p.Domain + "/page/" + itoa(page)
			}
			res, err := b.Visit(context.Background(), url)
			if err != nil {
				t.Fatal(err)
			}
			frames := 0
			for _, ev := range res.Trace.Events {
				if fn, ok := ev.(devtools.FrameNavigated); ok && fn.ParentFrameID != "" {
					frames++
				}
			}
			if frames == 0 {
				t.Error("iframe produced no child FrameNavigated event")
			}
			return
		}
	}
	t.Skip("no iframe pages in sample")
}

func TestDOMExfiltrationCarriesLiveDocument(t *testing.T) {
	e := newEnv(t, webgen.EraPrePatch)
	b := e.browser(57)
	// Find a session-replay publisher.
	for _, p := range e.world.Publishers {
		replay := false
		for _, c := range p.Services {
			if c.Category == webgen.CatSessionReplay {
				replay = true
			}
		}
		if !replay {
			continue
		}
		for page := 0; page <= p.NumPages; page++ {
			url := "http://" + p.Domain + "/"
			if page > 0 {
				url = "http://" + p.Domain + "/page/" + itoa(page)
			}
			res, err := b.Visit(context.Background(), url)
			if err != nil {
				continue
			}
			for _, ev := range res.Trace.Events {
				fs, ok := ev.(devtools.WebSocketFrameSent)
				if !ok {
					continue
				}
				if strings.Contains(string(fs.Payload), "dom=") {
					// The serialized DOM must reference this page.
					if !strings.Contains(res.Document.OuterHTML(), p.Domain) {
						t.Error("document does not mention publisher")
					}
					return
				}
			}
		}
	}
	t.Skip("no session-replay DOM upload observed in sample")
}

func TestResolveRef(t *testing.T) {
	base := urlutil.MustParse("http://pub.example/dir/page.html")
	tests := []struct{ href, want string }{
		{"http://other.example/x", "http://other.example/x"},
		{"//cdn.example/lib.js", "http://cdn.example/lib.js"},
		{"/abs/path", "http://pub.example/abs/path"},
		{"rel.html", "http://pub.example/dir/rel.html"},
	}
	for _, tc := range tests {
		u, err := resolveRef(base, tc.href)
		if err != nil {
			t.Fatalf("resolveRef(%q): %v", tc.href, err)
		}
		if u.String() != tc.want {
			t.Errorf("resolveRef(%q) = %q, want %q", tc.href, u.String(), tc.want)
		}
	}
}

func TestCookiePersistence(t *testing.T) {
	b := &Browser{cookies: map[string]string{}, rng: newTestRand()}
	c1 := b.cookieFor("tracker.example")
	c2 := b.cookieFor("tracker.example")
	if c1 != c2 {
		t.Error("cookie not stable per domain")
	}
	if b.existingCookie("fresh.example") != "" {
		t.Error("existingCookie invented a cookie")
	}
	if b.cookieFor("other.example") == c1 {
		t.Error("cookies identical across domains")
	}
}

func newTestRand() *rand.Rand { return rand.New(rand.NewSource(1)) }

// TestSocketGuardDefeatsWRB verifies the uBO-Extra mitigation: a
// page-level socket wrapper blocks A&A sockets even on a pre-patch
// browser where the webRequest layer never sees them.
func TestSocketGuardDefeatsWRB(t *testing.T) {
	e := newEnv(t, webgen.EraPrePatch)
	mitigation := filterlist.Parse("ws-mitigation", e.world.MitigationRulesText())

	// Find a page with sockets to A&A receivers using a stock browser.
	plain := e.browser(57)
	var pageURL string
search:
	for _, p := range e.world.Publishers {
		for page := 0; page <= 3 && page <= p.NumPages; page++ {
			url := "http://" + p.Domain + "/"
			if page > 0 {
				url = "http://" + p.Domain + "/page/" + itoa(page)
			}
			res, err := plain.Visit(context.Background(), url)
			if err != nil {
				continue
			}
			for _, ev := range res.Trace.Events {
				if ws, ok := ev.(devtools.WebSocketCreated); ok {
					u := urlutil.MustParse(ws.URL)
					if c := e.world.CompanyByDomain(u.RegistrableDomain()); c != nil && c.AA && c.AcceptsWS {
						pageURL = url
						break search
					}
				}
			}
		}
	}
	if pageURL == "" {
		t.Fatal("no A&A socket page found")
	}

	guard := adblock.NewSocketGuard("ubo-extra", adblock.AllURLs, mitigation)
	// Version 57: the WRB is live, yet the guard still vetoes sockets.
	b := e.browser(57, guard)
	res, err := b.Visit(context.Background(), pageURL)
	if err != nil {
		t.Fatal(err)
	}
	blocked := 0
	for _, ev := range res.Trace.Events {
		if rb, ok := ev.(devtools.RequestBlocked); ok && rb.Type == devtools.ResourceWebSocket {
			blocked++
			if rb.Extension != "ubo-extra" {
				t.Errorf("blocked by %q, want the guard", rb.Extension)
			}
		}
	}
	if blocked == 0 {
		t.Error("guard blocked nothing despite mitigation rules")
	}
	if guard.GuardedCount() != blocked {
		t.Errorf("guard count %d != blocked events %d", guard.GuardedCount(), blocked)
	}
}

// TestFeatureBlockerKillsAllSockets checks the Snyder et al. strategy:
// disabling the WebSocket feature wholesale stops every socket on any
// browser version.
func TestFeatureBlockerKillsAllSockets(t *testing.T) {
	e := newEnv(t, webgen.EraPrePatch)
	plain := e.browser(57)
	domain, _ := findSocketPublisher(t, e, plain)

	f := adblock.NewFeatureBlocker("no-websockets")
	b := e.browser(57, f)
	// Crawl several pages of the site: no socket may ever open.
	for page := 0; page <= 5; page++ {
		url := "http://" + domain + "/page/" + itoa(page)
		if page == 0 {
			url = "http://" + domain + "/"
		}
		res, err := b.Visit(context.Background(), url)
		if err != nil {
			continue
		}
		for _, ev := range res.Trace.Events {
			if _, ok := ev.(devtools.WebSocketCreated); ok {
				t.Fatal("a socket opened under the feature blocker")
			}
		}
	}
	if f.BlockedCount() == 0 {
		t.Error("feature blocker never fired")
	}
}
