package adblock

import (
	"sync/atomic"

	"repro/internal/devtools"
	"repro/internal/filterlist"
	"repro/internal/urlutil"
	"repro/internal/webrequest"
)

// SocketGuardBlocker models uBO-Extra (§2.3 of the paper): alongside
// ordinary webRequest blocking it implements browser.SocketGuard, a
// content-script wrapper around the WebSocket constructor. Because the
// wrapper runs inside the page it works even on browsers where the
// webRequest bug hides sockets from extensions — it was the community's
// stopgap during the five unpatched years.
type SocketGuardBlocker struct {
	*Blocker
	guarded atomic.Int64
}

// NewSocketGuard builds a blocker whose WebSocket decisions also run as
// a page-level guard. The underlying filter evaluation is shared.
func NewSocketGuard(name string, style PatternStyle, lists ...*filterlist.List) *SocketGuardBlocker {
	return &SocketGuardBlocker{Blocker: New(name, style, lists...)}
}

// AllowSocket implements browser.SocketGuard: the socket URL is checked
// against the same rule group, as a WebSocket-typed request.
func (g *SocketGuardBlocker) AllowSocket(pageURL, socketURL string) (bool, string) {
	u, err := urlutil.Parse(socketURL)
	if err != nil {
		return true, ""
	}
	pageHost := ""
	if p, err := urlutil.Parse(pageURL); err == nil {
		pageHost = p.Host
	}
	d := g.group.Match(filterlist.Request{URL: u, Type: devtools.ResourceWebSocket, PageHost: pageHost})
	if !d.Blocked {
		return true, ""
	}
	g.guarded.Add(1)
	return false, d.Rule.Raw
}

// GuardedCount returns how many sockets the page-level wrapper vetoed.
func (g *SocketGuardBlocker) GuardedCount() int {
	return int(g.guarded.Load())
}

// FeatureBlocker disables a whole browser feature rather than matching
// URLs — the "block the WebSocket standard outright" strategy Snyder et
// al. measured in privacy extensions (the paper cites their finding that
// blockers disabled WebSockets 65% of the time). It cancels every
// WebSocket it can see and, as a guard, every one it cannot.
type FeatureBlocker struct {
	name string
	hits atomic.Int64
}

// NewFeatureBlocker builds a block-all-WebSockets extension.
func NewFeatureBlocker(name string) *FeatureBlocker {
	return &FeatureBlocker{name: name}
}

// Name implements browser.Extension.
func (f *FeatureBlocker) Name() string { return f.name }

// Install implements browser.Extension.
func (f *FeatureBlocker) Install(reg *webrequest.Registry) {
	reg.OnBeforeRequest(f.name,
		[]webrequest.MatchPattern{webrequest.MustParseMatchPattern("<all_urls>")},
		[]devtools.ResourceType{devtools.ResourceWebSocket},
		func(webrequest.Details) webrequest.BlockingResponse {
			f.count()
			return webrequest.BlockingResponse{Cancel: true, Rule: "feature:websocket"}
		})
}

// AllowSocket implements browser.SocketGuard: nothing gets through.
func (f *FeatureBlocker) AllowSocket(pageURL, socketURL string) (bool, string) {
	f.count()
	return false, "feature:websocket"
}

func (f *FeatureBlocker) count() {
	f.hits.Add(1)
}

// BlockedCount returns how many sockets were cancelled.
func (f *FeatureBlocker) BlockedCount() int {
	return int(f.hits.Load())
}
