package adblock

import (
	"testing"

	"repro/internal/filterlist"
)

func TestSocketGuardVetoesListedSockets(t *testing.T) {
	g := NewSocketGuard("ubo-extra", AllURLs,
		filterlist.Parse("rules", "||wsnet.example^$websocket\n||adnet.example^"))

	allow, rule := g.AllowSocket("http://pub.example/", "ws://wsnet.example/s")
	if allow {
		t.Error("listed socket allowed by guard")
	}
	if rule == "" {
		t.Error("veto carries no rule")
	}
	allow, _ = g.AllowSocket("http://pub.example/", "ws://benign.example/s")
	if !allow {
		t.Error("benign socket vetoed")
	}
	// Domain-anchored non-websocket rules also apply to sockets.
	if allow, _ := g.AllowSocket("http://pub.example/", "ws://adnet.example/s"); allow {
		t.Error("domain rule not applied to socket")
	}
	if g.GuardedCount() != 2 {
		t.Errorf("guarded count = %d", g.GuardedCount())
	}
	// Unparsable URLs pass through (fail open, like content scripts).
	if allow, _ := g.AllowSocket("http://pub.example/", "::not-a-url::"); !allow {
		t.Error("unparsable URL vetoed")
	}
}

func TestSocketGuardStillBlocksHTTPViaWebRequest(t *testing.T) {
	g := NewSocketGuard("ubo-extra", AllURLs,
		filterlist.Parse("rules", "||adnet.example^"))
	// The embedded Blocker still works through the webRequest path.
	if g.Name() != "ubo-extra" {
		t.Error("name lost")
	}
	if g.BlockedCount() != 0 {
		t.Error("fresh blocker has hits")
	}
}

func TestFeatureBlockerBlocksEverything(t *testing.T) {
	f := NewFeatureBlocker("no-websockets")
	if allow, rule := f.AllowSocket("http://pub.example/", "ws://anything.example/s"); allow || rule != "feature:websocket" {
		t.Error("feature blocker allowed a socket")
	}
	if f.BlockedCount() != 1 {
		t.Errorf("count = %d", f.BlockedCount())
	}
}
