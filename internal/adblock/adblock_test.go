package adblock

import (
	"testing"

	"repro/internal/devtools"
	"repro/internal/filterlist"
	"repro/internal/webrequest"
)

func testBlocker(style PatternStyle) *Blocker {
	lists := filterlist.Parse("easylist", `
||adnet.example^$third-party
||tracker.example^
||wsnet.example^$websocket
`)
	return New("test-blocker", style, lists)
}

func details(url string, typ devtools.ResourceType) webrequest.Details {
	return webrequest.Details{
		RequestID: "R1", URL: url, Type: typ,
		FrameID: "F1", FirstPartyURL: "http://pub.example/",
	}
}

func TestBlockerCancelsListedResources(t *testing.T) {
	b := testBlocker(AllURLs)
	reg := webrequest.NewRegistry(true)
	b.Install(reg)

	if v := reg.Dispatch(details("http://cdn.adnet.example/ad.js", devtools.ResourceScript)); !v.Cancelled {
		t.Error("listed script not blocked")
	}
	if v := reg.Dispatch(details("http://benign.example/lib.js", devtools.ResourceScript)); v.Cancelled {
		t.Error("benign script blocked")
	}
	if v := reg.Dispatch(details("ws://wsnet.example/s", devtools.ResourceWebSocket)); !v.Cancelled {
		t.Error("$websocket rule not applied on patched browser")
	}
	if b.BlockedCount() != 2 {
		t.Errorf("blocked count = %d", b.BlockedCount())
	}
	rules := b.TopRules()
	if rules["||adnet.example^$third-party"] != 1 {
		t.Errorf("rule stats = %v", rules)
	}
}

func TestBlockerNeverCancelsDocuments(t *testing.T) {
	b := testBlocker(AllURLs)
	reg := webrequest.NewRegistry(true)
	b.Install(reg)
	if v := reg.Dispatch(details("http://tracker.example/", devtools.ResourceDocument)); v.Cancelled {
		t.Error("top-level document blocked")
	}
}

func TestHTTPOnlyStyleMissesWebSockets(t *testing.T) {
	b := testBlocker(HTTPOnlyPatterns)
	reg := webrequest.NewRegistry(true) // patched browser
	b.Install(reg)
	if v := reg.Dispatch(details("ws://wsnet.example/s", devtools.ResourceWebSocket)); v.Cancelled {
		t.Error("http-only patterns cancelled a ws:// request")
	}
	// HTTP still blocked.
	if v := reg.Dispatch(details("http://tracker.example/t.gif", devtools.ResourceImage)); !v.Cancelled {
		t.Error("http tracker not blocked")
	}
}

func TestWRBDefeatsEvenAllURLs(t *testing.T) {
	b := testBlocker(AllURLs)
	reg := webrequest.NewRegistry(false) // pre-patch browser
	b.Install(reg)
	if v := reg.Dispatch(details("ws://wsnet.example/s", devtools.ResourceWebSocket)); v.Cancelled || v.Dispatched {
		t.Errorf("WRB bypassed: %+v", v)
	}
	if b.BlockedCount() != 0 {
		t.Error("blocker saw a websocket through the WRB")
	}
}
