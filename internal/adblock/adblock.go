// Package adblock implements blocking extensions on top of the
// webRequest API and the filter-list engine — the AdBlock Plus / uBlock
// Origin layer of the paper's story.
//
// Two presets matter historically:
//
//   - HTTPOnlyPatterns models the extensions Franken et al. examined,
//     registered for "http://*/*, https://*/*": even on a patched
//     browser they cannot see ws:// URLs.
//   - AllURLs models a correctly-registered blocker that can interpose
//     on WebSockets — but only on browsers without the webRequest bug.
package adblock

import (
	"sync"
	"sync/atomic"

	"repro/internal/devtools"
	"repro/internal/filterlist"
	"repro/internal/urlutil"
	"repro/internal/webrequest"
)

// PatternStyle selects which match patterns the extension registers.
type PatternStyle int

// Pattern styles.
const (
	// HTTPOnlyPatterns registers http://*/* and https://*/* only: the
	// historical mistake that misses ws:// URLs entirely.
	HTTPOnlyPatterns PatternStyle = iota
	// AllURLs registers <all_urls>, covering ws:// and wss://.
	AllURLs
)

// Blocker is a filter-list-driven blocking extension. The pass path
// (no rule matched — almost all crawl traffic) touches no lock: the
// blocked tally is atomic and the per-rule histogram lock is taken only
// on actual cancellations.
type Blocker struct {
	name    string
	group   *filterlist.Group
	style   PatternStyle
	blocked atomic.Int64
	mu      sync.Mutex // guards byRule
	byRule  map[string]int
}

// New builds a blocker over the given rule lists.
func New(name string, style PatternStyle, lists ...*filterlist.List) *Blocker {
	return &Blocker{
		name:   name,
		group:  filterlist.NewGroup(lists...),
		style:  style,
		byRule: map[string]int{},
	}
}

// Name implements browser.Extension.
func (b *Blocker) Name() string { return b.name }

// Install implements browser.Extension.
func (b *Blocker) Install(reg *webrequest.Registry) {
	var patterns []webrequest.MatchPattern
	switch b.style {
	case HTTPOnlyPatterns:
		patterns = []webrequest.MatchPattern{
			webrequest.MustParseMatchPattern("http://*/*"),
			webrequest.MustParseMatchPattern("https://*/*"),
		}
	case AllURLs:
		patterns = []webrequest.MatchPattern{webrequest.MustParseMatchPattern("<all_urls>")}
	}
	reg.OnBeforeRequest(b.name, patterns, nil, b.onBeforeRequest)
}

func (b *Blocker) onBeforeRequest(d webrequest.Details) webrequest.BlockingResponse {
	u, err := urlutil.Parse(d.URL)
	if err != nil {
		return webrequest.BlockingResponse{}
	}
	// Blockers never cancel top-level documents.
	if d.Type == devtools.ResourceDocument {
		return webrequest.BlockingResponse{}
	}
	pageHost := ""
	if fp, err := urlutil.Parse(d.FirstPartyURL); err == nil {
		pageHost = fp.Host
	}
	decision := b.group.Match(filterlist.Request{URL: u, Type: d.Type, PageHost: pageHost})
	if !decision.Blocked {
		return webrequest.BlockingResponse{}
	}
	b.blocked.Add(1)
	b.mu.Lock()
	b.byRule[decision.Rule.Raw]++
	b.mu.Unlock()
	return webrequest.BlockingResponse{Cancel: true, Rule: decision.Rule.Raw}
}

// BlockedCount returns how many requests the blocker cancelled.
func (b *Blocker) BlockedCount() int {
	return int(b.blocked.Load())
}

// TopRules returns rule hit counts.
func (b *Blocker) TopRules() map[string]int {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]int, len(b.byRule))
	for k, v := range b.byRule {
		out[k] = v
	}
	return out
}
