// Package htmlparse is a lightweight HTML tokenizer and tree builder that
// turns the synthetic web's pages into dom trees.
//
// It handles the constructs the generated pages use — nested elements,
// attributes (quoted and bare), void elements, comments, raw-text script
// and style bodies, doctype — and recovers from mild malformation
// (unclosed tags, stray close tags) the way the measurement pipeline
// needs: never failing, always producing a tree.
package htmlparse

import (
	"strings"

	"repro/internal/dom"
)

// Parse parses HTML source into a document node. Parsing is forgiving:
// unknown constructs become text, unclosed elements are closed at EOF.
func Parse(src string) *dom.Node {
	p := &parser{src: src}
	doc := dom.NewDocument()
	p.parseChildren(doc, "")
	return doc
}

type parser struct {
	src string
	pos int
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

// parseChildren parses content into parent until a matching close tag for
// enclosing (or EOF). Returns when the close tag has been consumed.
func (p *parser) parseChildren(parent *dom.Node, enclosing string) {
	for !p.eof() {
		if p.peek() != '<' {
			start := p.pos
			idx := strings.IndexByte(p.src[p.pos:], '<')
			if idx < 0 {
				p.pos = len(p.src)
			} else {
				p.pos += idx
			}
			text := p.src[start:p.pos]
			if strings.TrimSpace(text) != "" || parent.Type != dom.DocumentNode {
				parent.AppendChild(dom.NewText(dom.UnescapeText(text)))
			}
			continue
		}
		// At '<'.
		rest := p.src[p.pos:]
		switch {
		case strings.HasPrefix(rest, "<!--"):
			end := strings.Index(rest[4:], "-->")
			if end < 0 {
				parent.AppendChild(dom.NewComment(rest[4:]))
				p.pos = len(p.src)
				return
			}
			parent.AppendChild(dom.NewComment(rest[4 : 4+end]))
			p.pos += 4 + end + 3
		case strings.HasPrefix(rest, "<!"):
			// Doctype or other declaration: skip to '>'.
			end := strings.IndexByte(rest, '>')
			if end < 0 {
				p.pos = len(p.src)
				return
			}
			p.pos += end + 1
		case strings.HasPrefix(rest, "</"):
			end := strings.IndexByte(rest, '>')
			if end < 0 {
				p.pos = len(p.src)
				return
			}
			name := strings.ToLower(strings.TrimSpace(rest[2:end]))
			p.pos += end + 1
			if name == enclosing {
				return
			}
			// Stray close tag: ignore it (recovery).
		default:
			tag, attrs, selfClose, ok := p.parseOpenTag()
			if !ok {
				// Bare '<' treated as text.
				parent.AppendChild(dom.NewText("<"))
				p.pos++
				continue
			}
			el := dom.NewElement(tag)
			for k, v := range attrs {
				el.SetAttr(k, v)
			}
			parent.AppendChild(el)
			if selfClose || dom.IsVoidElement(tag) {
				continue
			}
			if tag == "script" || tag == "style" {
				p.parseRawText(el, tag)
				continue
			}
			p.parseChildren(el, tag)
		}
	}
}

// parseRawText consumes raw text until the matching close tag.
func (p *parser) parseRawText(el *dom.Node, tag string) {
	lower := strings.ToLower(p.src[p.pos:])
	closeTag := "</" + tag
	idx := strings.Index(lower, closeTag)
	if idx < 0 {
		if p.pos < len(p.src) {
			el.AppendChild(dom.NewText(p.src[p.pos:]))
		}
		p.pos = len(p.src)
		return
	}
	if idx > 0 {
		el.AppendChild(dom.NewText(p.src[p.pos : p.pos+idx]))
	}
	p.pos += idx
	end := strings.IndexByte(p.src[p.pos:], '>')
	if end < 0 {
		p.pos = len(p.src)
		return
	}
	p.pos += end + 1
}

// parseOpenTag parses "<tag attr=val ...>" starting at p.pos (which points
// at '<'). Returns ok=false if this is not a well-formed open tag.
func (p *parser) parseOpenTag() (tag string, attrs map[string]string, selfClose, ok bool) {
	i := p.pos + 1
	start := i
	for i < len(p.src) && isNameByte(p.src[i]) {
		i++
	}
	if i == start {
		return "", nil, false, false
	}
	tag = strings.ToLower(p.src[start:i])
	attrs = map[string]string{}
	for {
		for i < len(p.src) && isSpace(p.src[i]) {
			i++
		}
		if i >= len(p.src) {
			p.pos = i
			return tag, attrs, false, true
		}
		switch p.src[i] {
		case '>':
			p.pos = i + 1
			return tag, attrs, false, true
		case '/':
			i++
			if i < len(p.src) && p.src[i] == '>' {
				p.pos = i + 1
				return tag, attrs, true, true
			}
			continue
		}
		// Attribute name.
		nameStart := i
		for i < len(p.src) && p.src[i] != '=' && p.src[i] != '>' && p.src[i] != '/' && !isSpace(p.src[i]) {
			i++
		}
		name := strings.ToLower(p.src[nameStart:i])
		if name == "" {
			i++ // skip junk byte
			continue
		}
		for i < len(p.src) && isSpace(p.src[i]) {
			i++
		}
		if i >= len(p.src) || p.src[i] != '=' {
			attrs[name] = "" // bare attribute
			continue
		}
		i++ // consume '='
		for i < len(p.src) && isSpace(p.src[i]) {
			i++
		}
		if i >= len(p.src) {
			attrs[name] = ""
			p.pos = i
			return tag, attrs, false, true
		}
		var val string
		if q := p.src[i]; q == '"' || q == '\'' {
			i++
			valStart := i
			for i < len(p.src) && p.src[i] != q {
				i++
			}
			val = p.src[valStart:i]
			if i < len(p.src) {
				i++ // closing quote
			}
		} else {
			valStart := i
			for i < len(p.src) && !isSpace(p.src[i]) && p.src[i] != '>' {
				i++
			}
			val = p.src[valStart:i]
		}
		attrs[name] = dom.UnescapeText(val)
	}
}

func isNameByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-' || c == '_' || c == ':'
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }
