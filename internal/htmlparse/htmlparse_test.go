package htmlparse

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dom"
)

func TestParseSimplePage(t *testing.T) {
	src := `<!DOCTYPE html>
<html>
<head><title>Pub Home</title></head>
<body>
<h1 id="hdr">Welcome</h1>
<p>Some <b>bold</b> text.</p>
<img src="http://cdn.pub.example/logo.png" alt="logo">
<script src="http://tracker.example/t.js"></script>
<a href="/page/2">next</a>
</body>
</html>`
	doc := Parse(src)
	if title := doc.GetElementsByTag("title"); len(title) != 1 || title[0].InnerText() != "Pub Home" {
		t.Errorf("title parse failed: %v", title)
	}
	h1 := doc.GetElementByID("hdr")
	if h1 == nil || h1.InnerText() != "Welcome" {
		t.Error("h1 parse failed")
	}
	imgs := doc.GetElementsByTag("img")
	if len(imgs) != 1 || imgs[0].Attr("src") != "http://cdn.pub.example/logo.png" || imgs[0].Attr("alt") != "logo" {
		t.Errorf("img parse failed: %v", imgs)
	}
	links := doc.GetElementsByTag("a")
	if len(links) != 1 || links[0].Attr("href") != "/page/2" {
		t.Errorf("a parse failed")
	}
	if p := doc.GetElementsByTag("p"); len(p) != 1 || p[0].InnerText() != "Some bold text." {
		t.Errorf("nested inline parse failed")
	}
}

func TestParseScriptRawText(t *testing.T) {
	src := `<script>if (a < b && c > d) { ws = new WebSocket("ws://adnet.example/data.ws"); }</script>`
	doc := Parse(src)
	scripts := doc.GetElementsByTag("script")
	if len(scripts) != 1 {
		t.Fatalf("scripts = %d", len(scripts))
	}
	body := scripts[0].InnerText()
	if !strings.Contains(body, `new WebSocket("ws://adnet.example/data.ws")`) {
		t.Errorf("script body = %q", body)
	}
	// '<' inside script must not start a new element.
	if len(doc.GetElementsByTag("b")) != 0 {
		t.Error("parsed elements inside script raw text")
	}
}

func TestParseAttributes(t *testing.T) {
	tests := []struct {
		src, attr, want string
	}{
		{`<div data-x="1 2"></div>`, "data-x", "1 2"},
		{`<div data-x='single'></div>`, "data-x", "single"},
		{`<div data-x=bare></div>`, "data-x", "bare"},
		{`<input disabled>`, "disabled", ""},
		{`<div data-x="a&amp;b"></div>`, "data-x", "a&b"},
	}
	for _, tc := range tests {
		doc := Parse(tc.src)
		var el *dom.Node
		doc.Walk(func(n *dom.Node) bool {
			if n.Type == dom.ElementNode {
				el = n
				return false
			}
			return true
		})
		if el == nil {
			t.Fatalf("no element parsed from %q", tc.src)
		}
		if !el.HasAttr(tc.attr) || el.Attr(tc.attr) != tc.want {
			t.Errorf("Parse(%q): attr %q = %q, want %q", tc.src, tc.attr, el.Attr(tc.attr), tc.want)
		}
	}
}

func TestParseComments(t *testing.T) {
	doc := Parse(`<div><!-- ad slot 3 --><span>x</span></div>`)
	var comment *dom.Node
	doc.Walk(func(n *dom.Node) bool {
		if n.Type == dom.CommentNode {
			comment = n
			return false
		}
		return true
	})
	if comment == nil || comment.Data != " ad slot 3 " {
		t.Errorf("comment = %v", comment)
	}
	if len(doc.GetElementsByTag("span")) != 1 {
		t.Error("element after comment lost")
	}
}

func TestParseSelfClosing(t *testing.T) {
	doc := Parse(`<div><br/><img src="x.png"/><p>after</p></div>`)
	if len(doc.GetElementsByTag("br")) != 1 || len(doc.GetElementsByTag("img")) != 1 {
		t.Error("self-closing elements lost")
	}
	p := doc.GetElementsByTag("p")
	if len(p) != 1 || p[0].Parent.Tag != "div" {
		t.Error("element after self-closing misplaced")
	}
}

func TestParseVoidWithoutSlash(t *testing.T) {
	doc := Parse(`<p>a<br>b</p>`)
	p := doc.GetElementsByTag("p")[0]
	if p.InnerText() != "ab" {
		t.Errorf("InnerText = %q", p.InnerText())
	}
	br := doc.GetElementsByTag("br")[0]
	if br.FirstChild != nil {
		t.Error("void element captured children")
	}
}

func TestParseRecovery(t *testing.T) {
	// Unclosed elements close at EOF; stray close tags are ignored.
	doc := Parse(`<div><p>unclosed</span><b>bold`)
	if len(doc.GetElementsByTag("div")) != 1 || len(doc.GetElementsByTag("b")) != 1 {
		t.Error("recovery parse lost elements")
	}
	if got := doc.InnerText(); got != "unclosedbold" {
		t.Errorf("InnerText = %q", got)
	}
	// Bare '<' treated as text.
	doc2 := Parse(`<p>1 < 2</p>`)
	if got := doc2.GetElementsByTag("p")[0].InnerText(); got != "1 < 2" {
		t.Errorf("bare < text = %q", got)
	}
}

func TestParseEntities(t *testing.T) {
	doc := Parse(`<p>a &lt; b &amp;&amp; c &gt; d</p>`)
	if got := doc.GetElementsByTag("p")[0].InnerText(); got != "a < b && c > d" {
		t.Errorf("entities = %q", got)
	}
}

// TestSerializeParseRoundTrip checks that serializing a parsed tree and
// reparsing yields an identical serialization (fixed point after one
// round).
func TestSerializeParseRoundTrip(t *testing.T) {
	srcs := []string{
		`<!DOCTYPE html><html><head><title>T</title></head><body><div id="a">x<b>y</b></div><img src="i.png"><script>var a = 1 < 2;</script></body></html>`,
		`<div class="x" id="y"><p>hello &amp; goodbye</p></div>`,
	}
	for _, src := range srcs {
		once := Parse(src).OuterHTML()
		twice := Parse(once).OuterHTML()
		if once != twice {
			t.Errorf("round trip not stable:\nonce:  %s\ntwice: %s", once, twice)
		}
	}
}

// TestParseNeverPanicsProperty feeds adversarial fragments and asserts the
// parser always produces a tree.
func TestParseNeverPanicsProperty(t *testing.T) {
	pieces := []string{"<", ">", "</", "<div", "\"", "'", "=", "a", " ", "<!--", "-->", "<script>", "</script>", "<!", "/>", "&amp;", "<br>"}
	f := func(idx []uint8) bool {
		var b strings.Builder
		for _, i := range idx {
			b.WriteString(pieces[int(i)%len(pieces)])
		}
		doc := Parse(b.String())
		return doc != nil && doc.Type == dom.DocumentNode
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParseDeepNesting(t *testing.T) {
	var b strings.Builder
	const depth = 200
	for i := 0; i < depth; i++ {
		b.WriteString("<div>")
	}
	b.WriteString("core")
	for i := 0; i < depth; i++ {
		b.WriteString("</div>")
	}
	doc := Parse(b.String())
	if got := len(doc.GetElementsByTag("div")); got != depth {
		t.Errorf("divs = %d, want %d", got, depth)
	}
	if doc.InnerText() != "core" {
		t.Errorf("InnerText = %q", doc.InnerText())
	}
}

func TestParseIframeAndLinkExtractionShape(t *testing.T) {
	src := `<body>
	<iframe src="http://ads.example/frame.html"></iframe>
	<a href="http://pub.example/p1">1</a>
	<a href="http://pub.example/p2">2</a>
	</body>`
	doc := Parse(src)
	if ifr := doc.GetElementsByTag("iframe"); len(ifr) != 1 || ifr[0].Attr("src") != "http://ads.example/frame.html" {
		t.Error("iframe parse failed")
	}
	if links := doc.GetElementsByTag("a"); len(links) != 2 {
		t.Error("link parse failed")
	}
}
