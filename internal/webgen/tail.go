package webgen

import (
	"fmt"

	"repro/internal/payload"
)

// feedPartners is built once: the pool is deterministic, every consumer
// treats it (and its subslices) as read-only, and catalog construction
// happens on each NewWorld, so rebuilding 40 formatted domains there is
// pure allocation churn.
var feedPartners = buildFeedPartnerPool()

// feedPartnerPool returns the pool of benign third-party WebSocket
// endpoints (sports feeds, push relays, realtime APIs) that the 382
// unique non-A&A receiver domains of §4.1 are drawn from. Read-only.
func feedPartnerPool() []string {
	return feedPartners
}

func buildFeedPartnerPool() []string {
	kinds := []string{"feed", "push", "live", "stream", "rtapi", "syncd", "score", "tick"}
	var out []string
	for i, k := range kinds {
		for j := 0; j < 5; j++ {
			// Each endpoint gets its own registrable domain: the paper
			// aggregates receivers at the 2nd level, so diversity must
			// survive that aggregation.
			out = append(out, fmt.Sprintf("%s%02d-rt.net", k, i*5+j))
		}
	}
	return out // 40 domains
}

// tailAdTechNames builds the long tail of small ad-tech companies. The
// first persistCount keep initiating WebSockets after the patch; the rest
// are the ~56 A&A initiators that disappear between the first and last
// crawl (§4.1).
func tailAdTech() []*Company {
	prefixes := []string{"track", "pixel", "adserv", "rtb", "bidx", "audi", "beacn", "syncad", "dmpjs", "taggy"}
	suffixes := []string{"media", "metrics", "ads", "digital", "network", "labs", "io"}
	receiverChoices := [][]string{
		{"33across.com"},
		{"adnxs.com"},
		{"googlesyndication.com"},
		{"realtime.co"},
		{"pusher.com"},
		{"cloudflare.com"},
		{"realtime.co", "pusher.com"},
		{"googlesyndication.com", "cloudflare.com"},
	}
	const total = 72
	const persistCount = 6
	out := make([]*Company, 0, total)
	for i := 0; i < total; i++ {
		domain := fmt.Sprintf("%s%s%02d.com", prefixes[i%len(prefixes)], suffixes[(i/len(prefixes))%len(suffixes)], i)
		persists := i < persistCount
		c := &Company{
			Name:     fmt.Sprintf("AdTech-%02d", i),
			Domain:   domain,
			Category: CatAdExchange,
			AA:       true,
			EasyList: true,
			// Half the long tail evades full-domain listing (small
			// ad-tech churns faster than the lists).
			PartialRules: i%2 == 0,
			// All tail ad-tech initiates pre-patch; only the first few
			// persist after Chrome 58.
			InitiatesWS:      [2]bool{true, persists},
			Style:            InitPartner,
			SocketsPerPage:   IntRange{1, 1},
			PagesWithSockets: 0.10,
			PartnerPool:      receiverChoices[i%len(receiverChoices)],
			PartnersPerPage:  IntRange{1, 1},
			SendKinds:        [][]string{{payload.KindUA, payload.KindCookie}},
			SendBinary:       0.04,
			CookieProb:       0.7,
			DeployWeight:     0.35,
			HTTPPresence:     true,
			BeaconKinds:      [][]string{{payload.KindUA, payload.KindCookie}},
		}
		if i%9 == 0 {
			// Some of the tail sends identifier-rich payloads.
			c.SendKinds = [][]string{{payload.KindUA, payload.KindCookie, payload.KindIP, payload.KindUserID}}
		}
		if i%13 == 0 {
			c.SendKinds = append(c.SendKinds, []string{payload.KindLanguage})
		}
		out = append(out, c)
	}
	return out
}

// httpOnlyAdTech are A&A companies with no WebSocket behaviour at all:
// the bulk of ordinary tracking (analytics tags, ad pixels) that gives
// the HTTP/S columns of Table 5 their mass and drives the ~27% blockable
// baseline of §4.2.
func httpOnlyAdTech() []*Company {
	specs := []struct {
		name, domain string
		cat          Category
		easylist     bool // else EasyPrivacy
		partial      bool // only /track paths listed
		weight       float64
		beacon       [][]string
	}{
		{"Google Analytics", "google-analytics.com", CatAnalytics, false, true, 4.0,
			[][]string{{payload.KindUA, payload.KindCookie}}},
		{"Scorecard Research", "scorecardresearch.com", CatAnalytics, false, false, 2.2,
			[][]string{{payload.KindUA, payload.KindCookie}}},
		{"Quantcast", "quantserve.com", CatAnalytics, false, false, 2.0,
			[][]string{{payload.KindUA, payload.KindCookie, payload.KindIP}}},
		{"Criteo", "criteo.com", CatAdExchange, true, false, 2.4,
			[][]string{{payload.KindUA, payload.KindCookie, payload.KindUserID}}},
		{"Rubicon", "rubiconproject.com", CatAdExchange, true, false, 1.8,
			[][]string{{payload.KindUA, payload.KindCookie}}},
		{"OpenX", "openx.net", CatAdExchange, true, false, 1.6,
			[][]string{{payload.KindUA, payload.KindCookie}}},
		{"PubMatic", "pubmatic.com", CatAdExchange, true, false, 1.5,
			[][]string{{payload.KindUA, payload.KindCookie}}},
		{"Taboola", "taboola.com", CatCRN, true, false, 1.8,
			[][]string{{payload.KindUA, payload.KindCookie}}},
		{"Outbrain", "outbrain.com", CatCRN, true, false, 1.7,
			[][]string{{payload.KindUA, payload.KindCookie}}},
		{"Chartbeat", "chartbeat.com", CatAnalytics, false, true, 1.4,
			[][]string{{payload.KindUA, payload.KindCookie, payload.KindLanguage}}},
		{"NewRelic", "nr-data.net", CatAnalytics, false, true, 1.3,
			[][]string{{payload.KindUA}}},
		{"Amazon Ads", "amazon-adsystem.com", CatAdExchange, true, false, 1.9,
			[][]string{{payload.KindUA, payload.KindCookie, payload.KindUserID}}},
		{"Casale", "casalemedia.com", CatAdExchange, true, false, 1.1,
			[][]string{{payload.KindUA, payload.KindCookie}}},
		{"Moat", "moatads.com", CatAnalytics, true, true, 1.2,
			[][]string{{payload.KindUA, payload.KindViewport}}},
		{"Integral Ads", "adsafeprotected.com", CatAnalytics, true, true, 1.2,
			[][]string{{payload.KindUA, payload.KindCookie}}},
	}
	out := make([]*Company, 0, len(specs))
	for _, s := range specs {
		out = append(out, &Company{
			Name:         s.name,
			Domain:       s.domain,
			Category:     s.cat,
			AA:           true,
			EasyList:     s.easylist,
			EasyPrivacy:  !s.easylist,
			PartialRules: s.partial,
			DeployWeight: s.weight,
			HTTPPresence: true,
			BeaconKinds:  s.beacon,
		})
	}
	return out
}

// benignThirdParties serve scripts, fonts, and images with no tracking:
// the n(d) mass that keeps honest CDNs below the 10% A&A threshold.
func benignThirdParties() []*Company {
	specs := []struct {
		name, domain string
		weight       float64
	}{
		{"jQuery CDN", "jqcdn-static.com", 3.0},
		{"Font Service", "webfonts-host.org", 2.6},
		{"Bootstrap CDN", "bootcdn-lib.net", 2.0},
		{"Polyfill", "polyfill-svc.io", 1.4},
		{"Static Hosting", "statichost-cdn.net", 1.8},
		{"Map Tiles", "maptiles-api.org", 0.9},
	}
	out := make([]*Company, 0, len(specs))
	for _, s := range specs {
		out = append(out, &Company{
			Name:         s.name,
			Domain:       s.domain,
			Category:     CatCDN,
			AA:           false,
			DeployWeight: s.weight,
			HTTPPresence: true,
		})
	}
	return out
}

// mixedLabelParties have some resources matched by the lists and some
// not, exercising the a(d) >= 0.1*n(d) threshold of §3.2 from both
// sides: "borderline" clears the 10% bar, "mostly-clean" does not.
func mixedLabelParties() []*Company {
	return []*Company{
		{
			Name: "Borderline CDN", Domain: "borderline-cdn.com",
			Category: CatCDN, AA: true, PartialRules: true, EasyPrivacy: true,
			DeployWeight: 1.0, HTTPPresence: true,
			// Roughly 1 tracked beacon for every few clean resources:
			// above 10%, so labeled A&A.
			BeaconKinds: [][]string{{payload.KindUA}},
		},
		{
			Name: "Mostly Clean CDN", Domain: "mostlyclean-cdn.net",
			Category: CatCDN, AA: false, PartialRules: true, EasyPrivacy: true,
			// Its tracked path is requested so rarely relative to clean
			// loads that it stays under the threshold; the world
			// generator requests the clean path many times per tracked
			// one (see resources.go).
			DeployWeight: 1.2, HTTPPresence: true,
		},
	}
}

// AllCompanies assembles the full registry.
func AllCompanies() []*Company {
	var out []*Company
	out = append(out, NamedCompanies()...)
	out = append(out, tailAdTech()...)
	out = append(out, httpOnlyAdTech()...)
	out = append(out, benignThirdParties()...)
	out = append(out, mixedLabelParties()...)
	return out
}
