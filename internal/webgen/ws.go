package webgen

import (
	"repro/internal/payload"
	"repro/internal/urlutil"
)

// WSEndpoint describes one WebSocket-accepting endpoint.
type WSEndpoint struct {
	// Company is the receiving company, nil for generic feed endpoints
	// and publisher-hosted sockets.
	Company *Company
	// Publisher is set for publisher-hosted (self) sockets.
	Publisher *Publisher
}

// WSEndpointFor resolves the endpoint serving a WebSocket handshake to
// host+path, or false if the world hosts no socket there.
func (w *World) WSEndpointFor(host, path string) (*WSEndpoint, bool) {
	reg := urlutil.RegistrableDomain(host)
	if pub := w.pubByDomain[reg]; pub != nil {
		// "/live" is the publisher's own socket; "/stream" serves
		// partners that treat the publisher as a data source (the
		// googleapis → sportingindex pair of Table 4).
		if path == "/live" || path == "/stream" {
			return &WSEndpoint{Publisher: pub}, true
		}
		return nil, false
	}
	if c := w.companyByDomain[reg]; c != nil {
		want := c.WSPath
		if want == "" {
			want = "/ws"
		}
		if c.AcceptsWS && path == want {
			return &WSEndpoint{Company: c}, true
		}
		// Companies in partner pools that do not formally accept
		// sockets still answer as generic endpoints (the real web is
		// ragged like that).
		if path == "/ws" || path == "/stream" {
			return &WSEndpoint{Company: c}, true
		}
		return nil, false
	}
	if w.feedDomains[reg] && path == "/stream" {
		return &WSEndpoint{}, true
	}
	return nil, false
}

// WSMessages builds the messages an endpoint pushes for one connection,
// given the query parameters of the socket URL (sid seeds the content, n
// caps the count — the page knows its protocol, like real apps).
func (w *World) WSMessages(ep *WSEndpoint, query string) [][]byte {
	q := parseQuery(query)
	n := atoi(q["n"])
	if n <= 0 {
		return nil
	}
	if n > 8 {
		n = 8
	}
	rng := w.rng("wsresp", q["sid"], query)
	var kinds []string
	cdn := ""
	switch {
	case ep.Company != nil && len(ep.Company.RespondKinds) > 0:
		kinds = ep.Company.RespondKinds
		cdn = ep.Company.AdCDNHost
		if cdn == "" {
			cdn = "static." + ep.Company.Domain
		}
	case ep.Publisher != nil:
		kinds = []string{payload.RespJSON, payload.RespHTML}
		cdn = ep.Publisher.Domain
	default:
		kinds = []string{payload.RespJSON}
		cdn = "feedstatic.example.net"
	}
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		kind := kinds[(i+rng.Intn(len(kinds)))%len(kinds)]
		out = append(out, payload.Respond(kind, cdn, rng))
	}
	return out
}
