package webgen

import (
	"fmt"
	"sort"
	"strings"
)

// EasyListText generates the synthetic EasyList: domain rules for ad
// companies, a handful of generic URL patterns, and — mirroring the
// real list's whitelist entries that footnote 2 of the paper mentions —
// a few exception rules.
//
// Deliberately absent, per §4.3: any rule matching cdn1.lockerdome.com's
// creative paths, and any $websocket rules (those arrived as mitigations
// this study's window predates for most sockets).
func (w *World) EasyListText() string {
	var b strings.Builder
	b.WriteString("[Adblock Plus 2.0]\n! Title: Synthetic EasyList\n! Generated for the wsrepro world\n")
	b.WriteString("&ad_box_\n-banner-ad-\n/banner/*/img^\n")

	var full, partial []string
	for _, c := range w.Companies {
		if !c.EasyList {
			continue
		}
		if c.PartialRules {
			partial = append(partial, c.Domain)
		} else {
			full = append(full, c.Domain)
		}
	}
	sort.Strings(full)
	sort.Strings(partial)
	for _, d := range full {
		fmt.Fprintf(&b, "||%s^$third-party\n", d)
	}
	for _, d := range partial {
		fmt.Fprintf(&b, "||%s/track/\n", d)
	}
	// Whitelist entries that protect site functionality (the reason
	// post-hoc matching can miss blocks, footnote 2).
	b.WriteString("@@||googlesyndication.com/safeframe/^$subdocument\n")
	b.WriteString("@@||doubleclick.net/instream/ad_status.js$script,domain=espn.com\n")
	return b.String()
}

// EasyPrivacyText generates the synthetic EasyPrivacy: tracker domains
// and tracking-path rules for partially-listed services (chat widgets
// and session replay earn their A&A label here without their widget
// scripts being blockable — the §4.2 finding that only ~5% of chains
// into A&A sockets would have been blocked).
func (w *World) EasyPrivacyText() string {
	var b strings.Builder
	b.WriteString("[Adblock Plus 2.0]\n! Title: Synthetic EasyPrivacy\n")
	b.WriteString("/tracking/pixel\n/beacon/\n")

	var full, partial []string
	for _, c := range w.Companies {
		if !c.EasyPrivacy {
			continue
		}
		if c.PartialRules {
			partial = append(partial, c.Domain)
		} else {
			full = append(full, c.Domain)
		}
	}
	sort.Strings(full)
	sort.Strings(partial)
	for _, d := range full {
		fmt.Fprintf(&b, "||%s^$third-party\n", d)
	}
	for _, d := range partial {
		fmt.Fprintf(&b, "||%s/track/\n", d)
	}
	return b.String()
}

// MitigationRulesText generates the $websocket rules blockers shipped as
// workarounds before Chrome 58 (uBlock Origin's uBO-Extra era). They are
// used by ablation benchmarks, not by the main reproduction.
func (w *World) MitigationRulesText() string {
	var b strings.Builder
	b.WriteString("! Synthetic WebSocket mitigation rules\n")
	var domains []string
	for _, c := range w.Companies {
		if c.AcceptsWS && c.AA {
			domains = append(domains, c.Domain)
		}
	}
	sort.Strings(domains)
	for _, d := range domains {
		fmt.Fprintf(&b, "||%s^$websocket\n", d)
	}
	return b.String()
}

// CloudfrontMap returns the manual CDN-host-to-company mapping the
// authors built for the 13 Cloudfront domains (§3.2). The labeler uses
// it to attribute opaque CDN hosts.
func (w *World) CloudfrontMap() map[string]string {
	out := map[string]string{}
	for _, c := range w.Companies {
		if c.CloudfrontHost != "" {
			out[c.CloudfrontHost] = c.Domain
		}
	}
	return out
}
