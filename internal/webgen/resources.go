package webgen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/payload"
	"repro/internal/script"
	"repro/internal/urlutil"
)

// Resource is one HTTP-servable object.
type Resource struct {
	Status      int
	ContentType string
	Body        []byte
}

// PagePlan is the deterministic load plan for one publisher page: what
// the HTML references directly and what the first-party script does.
type PagePlan struct {
	Title      string
	DirectURLs []string // third-party script tags in the HTML
	AppProgram *script.Program
	ImagePaths []string // first-party images
	IframeURLs []string // ad-slot iframes
	LinkPaths  []string // same-site navigation links
}

// PlanFor computes the load plan for page n (0 = homepage) of a
// publisher. The plan is pure: equal (world, publisher, page) yield the
// same plan. Because it is pure, results are memoized on the World —
// RenderPage and the /js/app.js endpoint both need the same plan for
// every page visit — and the returned *PagePlan is shared: callers must
// treat it as read-only.
func (w *World) PlanFor(pub *Publisher, page int) *PagePlan {
	key := planKey{domain: pub.Domain, page: page}
	w.planMu.Lock()
	if plan, ok := w.planCache[key]; ok {
		w.planMu.Unlock()
		return plan
	}
	w.planMu.Unlock()
	// Compute outside the lock: plans are pure, so a racing duplicate
	// computation yields an identical plan and either result may win.
	plan := w.computePlan(pub, page)
	w.planMu.Lock()
	w.planCache[key] = plan
	w.planMu.Unlock()
	return plan
}

func (w *World) computePlan(pub *Publisher, page int) *PagePlan {
	rng := w.rng("plan", pub.Domain, fmt.Sprint(page))
	plan := &PagePlan{
		Title:      fmt.Sprintf("%s — %s %d", pub.Domain, pub.Category, page),
		AppProgram: &script.Program{},
	}

	// Third-party placements: stable per site, split between direct
	// HTML tags and dynamic inclusion by the first-party script.
	for _, c := range pub.Services {
		su := w.scriptURL(c, pub, page)
		if w.stableRng("placement", pub.Domain, c.Domain).Float64() < 0.5 {
			plan.DirectURLs = append(plan.DirectURLs, su)
		} else {
			plan.AppProgram.Ops = append(plan.AppProgram.Ops, script.Include(su))
		}
		// Full-blocked ad companies also render iframe ad slots.
		if c.EasyList && !c.PartialRules && c.Category != CatAnalytics && rng.Float64() < 0.5 {
			plan.IframeURLs = append(plan.IframeURLs,
				fmt.Sprintf("http://%s/frame.html?pub=%s&pg=%d", c.scriptHost(), pub.Domain, page))
		}
	}

	// First-party-initiated sockets: the inline-snippet pattern that
	// gives chat receivers their benign initiators (Table 3).
	for _, c := range pub.Services {
		if !c.AcceptsWS || c.Style != InitFirstParty || !c.InitiatesWS[w.Cfg.Era] {
			continue
		}
		if rng.Float64() >= c.PagesWithSockets {
			continue
		}
		count := c.SocketsPerPage.sample(rng.Float64())
		for k := 0; k < count; k++ {
			op := w.socketOp(c, c.Domain, rng)
			plan.AppProgram.Ops = append(plan.AppProgram.Ops, op)
		}
	}

	// Publisher-hosted sockets (games, dashboards): same-origin,
	// non-A&A on both ends.
	if pub.SelfWS && rng.Float64() < 0.7 {
		n := 1 + rng.Intn(2)
		url := fmt.Sprintf("ws://%s/live?sid=%08x&n=%d", pub.Domain, rng.Uint32(), n)
		plan.AppProgram.Ops = append(plan.AppProgram.Ops, script.Op{
			Do: script.OpOpenWebSocket, URL: url,
			Send:   []script.MessageSpec{{Kinds: []string{payload.KindUA}}},
			Expect: n,
		})
	}

	// Page furniture.
	nImages := 2 + rng.Intn(4)
	for k := 0; k < nImages; k++ {
		plan.ImagePaths = append(plan.ImagePaths, fmt.Sprintf("/img/%d-%d.gif", page, k))
	}
	if page == 0 {
		for n := 1; n <= pub.NumPages; n++ {
			plan.LinkPaths = append(plan.LinkPaths, fmt.Sprintf("/page/%d", n))
		}
	} else {
		seen := map[int]bool{page: true}
		for k := 0; k < 4 && len(seen) <= pub.NumPages; k++ {
			n := 1 + rng.Intn(pub.NumPages)
			if !seen[n] {
				seen[n] = true
				plan.LinkPaths = append(plan.LinkPaths, fmt.Sprintf("/page/%d", n))
			}
		}
		plan.LinkPaths = append(plan.LinkPaths, "/")
	}
	return plan
}

// scriptURL builds a company's widget-script URL for one page. The pg
// parameter makes behaviour page-specific while remaining cacheable in
// shape, the way real tags carry cache-busting parameters.
func (w *World) scriptURL(c *Company, pub *Publisher, page int) string {
	return fmt.Sprintf("http://%s/w.js?pub=%s&pg=%d", c.scriptHost(), pub.Domain, page)
}

// socketOp builds an open_websocket op targeting the given receiver
// domain on behalf of company c.
func (w *World) socketOp(c *Company, receiverDomain string, rng *rand.Rand) script.Op {
	path, n := w.endpointFor(receiverDomain, rng)
	url := fmt.Sprintf("ws://%s%s?sid=%08x&n=%d", receiverDomain, path, rng.Uint32(), n)
	var send []script.MessageSpec
	if rng.Float64() >= c.SendNothing {
		for _, kinds := range c.SendKinds {
			send = append(send, script.MessageSpec{Kinds: append([]string(nil), kinds...)})
		}
		// Receivers that harvest fingerprints get the full bundle from
		// every A&A script that connects (the DoubleClick → 33across
		// flow of §4.3).
		if rc := w.companyByDomain[urlutil.RegistrableDomain(receiverDomain)]; rc != nil && rc.CollectsFingerprint && c.AA {
			send = append(send, script.MessageSpec{Kinds: append([]string(nil), payload.FingerprintKinds...)})
		}
		if c.SendBinary > 0 && rng.Float64() < c.SendBinary {
			send = append(send, script.MessageSpec{Kinds: []string{payload.KindBinary}, Binary: true})
		}
	}
	return script.Op{
		Do:         script.OpOpenWebSocket,
		URL:        url,
		Send:       send,
		Expect:     n,
		SendCookie: rng.Float64() < c.CookieProb,
	}
}

// endpointFor returns the WebSocket path and the number of messages the
// endpoint will push for this connection.
func (w *World) endpointFor(receiverDomain string, rng *rand.Rand) (string, int) {
	if rc := w.companyByDomain[urlutil.RegistrableDomain(receiverDomain)]; rc != nil && rc.AcceptsWS {
		path := rc.WSPath
		if path == "" {
			path = "/ws"
		}
		if rng.Float64() < rc.RespondNothing {
			return path, 0
		}
		if rng.Float64() < 0.6 {
			return path, 1
		}
		return path, 2 + rng.Intn(2)
	}
	// Generic feed endpoint.
	if rng.Float64() < 0.35 {
		return "/stream", 0
	}
	return "/stream", 1 + rng.Intn(2)
}

// companyProgram builds the behaviour program for a company's widget
// script on one page of one publisher.
func (w *World) companyProgram(c *Company, pub *Publisher, page int) *script.Program {
	rng := w.rng("cw", pub.Domain, fmt.Sprint(page), c.Domain)
	p := &script.Program{}

	// Ordinary HTTP tracking: beacons and pixels (Table 5's HTTP/S
	// comparison columns). Partially-listed companies fire at least a
	// minimal beacon — that /track request is what earns them their
	// a(d) observations and hence their place in D′.
	beacons := c.BeaconKinds
	if len(beacons) == 0 && c.PartialRules {
		beacons = [][]string{{payload.KindUA}}
	}
	// The mostly-clean CDN fires its tracked beacon too rarely to
	// clear the 10% labeling threshold (and never on shallow pages, so
	// small crawls cannot mislabel it by sampling luck).
	fire := true
	if c.Domain == "mostlyclean-cdn.net" {
		fire = page == 7 && rng.Intn(2) == 0
	}
	if fire {
		for _, kinds := range beacons {
			p.Ops = append(p.Ops, script.Op{
				Do:         script.OpHTTPBeacon,
				URL:        fmt.Sprintf("http://%s/track/b?pub=%s&pg=%d", c.scriptHost(), pub.Domain, page),
				Send:       []script.MessageSpec{{Kinds: append([]string(nil), kinds...)}},
				SendCookie: rng.Float64() < 0.5,
			})
		}
	}
	if c.HTTPPresence {
		p.Ops = append(p.Ops, script.Image(
			fmt.Sprintf("http://%s/pixel.gif?pub=%s&r=%06d", c.scriptHost(), pub.Domain, rng.Intn(1_000_000))))
	}
	// The borderline CDN fires a tracked beacon on every page so it
	// clears the threshold despite serving mostly clean resources.
	if c.Domain == "borderline-cdn.com" {
		p.Ops = append(p.Ops, script.Image(
			fmt.Sprintf("http://%s/lib/asset-%d.gif", c.scriptHost(), rng.Intn(8))))
	}

	// WebSocket behaviour.
	if c.InitiatesWS[w.Cfg.Era] && c.Style != InitFirstParty && rng.Float64() < c.PagesWithSockets {
		count := c.SocketsPerPage.sample(rng.Float64())
		for k := 0; k < count; k++ {
			receiver := c.Domain
			if c.Style == InitPartner && len(c.PartnerPool) > 0 {
				// Each page dials a bounded set of partners.
				nPartners := c.PartnersPerPage.sample(rng.Float64())
				if nPartners < 1 {
					nPartners = 1
				}
				receiver = c.PartnerPool[rng.Intn(len(c.PartnerPool))]
				for extra := 1; extra < nPartners; extra++ {
					r2 := c.PartnerPool[rng.Intn(len(c.PartnerPool))]
					p.Ops = append(p.Ops, w.socketOp(c, r2, rng))
				}
			}
			p.Ops = append(p.Ops, w.socketOp(c, receiver, rng))
		}
	}
	return p
}

// Get resolves an absolute http:// URL to a servable resource. The
// second return is false for hosts/paths outside the world.
func (w *World) Get(rawURL string) (*Resource, bool) {
	u, err := urlutil.Parse(rawURL)
	if err != nil {
		return nil, false
	}
	return w.GetURL(u)
}

// GetURL is Get for callers that already hold a parsed URL (the
// in-process Fetch plane), sparing the round-trip through String and
// re-Parse. u is treated as read-only.
func (w *World) GetURL(u *urlutil.URL) (*Resource, bool) {
	if u.IsWebSocket() {
		return nil, false
	}
	if pub := w.pubByDomain[u.Host]; pub != nil {
		return w.publisherResource(pub, u)
	}
	if c := w.CompanyByHost(u.Host); c != nil {
		return w.companyResource(c, u)
	}
	return nil, false
}

func (w *World) publisherResource(pub *Publisher, u *urlutil.URL) (*Resource, bool) {
	switch {
	case u.Path == "/":
		return htmlResource(w.RenderPage(pub, 0)), true
	case strings.HasPrefix(u.Path, "/page/"):
		n := atoi(strings.TrimPrefix(u.Path, "/page/"))
		if n < 1 || n > pub.NumPages {
			return &Resource{Status: 404, ContentType: "text/plain", Body: []byte("not found")}, true
		}
		return htmlResource(w.RenderPage(pub, n)), true
	case u.Path == "/js/app.js":
		plan := w.PlanFor(pub, atoi(queryParam(u.Query, "pg")))
		return jsResource(plan.AppProgram.MustEncode()), true
	case strings.HasPrefix(u.Path, "/img/"):
		return &Resource{Status: 200, ContentType: "image/gif", Body: pixelGIFBody}, true
	case u.Path == "/css/site.css":
		return &Resource{Status: 200, ContentType: "text/css",
			Body: []byte("body{font-family:sans-serif;margin:2em}.ad{border:1px solid #ccc}")}, true
	}
	return &Resource{Status: 404, ContentType: "text/plain", Body: []byte("not found")}, true
}

func (w *World) companyResource(c *Company, u *urlutil.URL) (*Resource, bool) {
	switch {
	case u.Path == "/w.js":
		pub := w.pubByDomain[queryParam(u.Query, "pub")]
		if pub == nil {
			return jsResource("/* no-op */function noop(){}"), true
		}
		return jsResource(w.companyProgram(c, pub, atoi(queryParam(u.Query, "pg"))).MustEncode()), true
	case u.Path == "/pixel.gif":
		return &Resource{Status: 200, ContentType: "image/gif", Body: pixelGIFBody}, true
	case strings.HasPrefix(u.Path, "/track/"):
		// Beacon endpoints usually acknowledge with an empty body, but
		// some return small JSON configs (Table 5's HTTP JSON slice).
		if len(u.Query)%6 == 0 {
			return &Resource{Status: 200, ContentType: "application/json", Body: []byte(`{"ok":true,"sampled":false}`)}, true
		}
		return &Resource{Status: 204, ContentType: "text/plain", Body: nil}, true
	case u.Path == "/frame.html":
		rng := w.rng("frame", u.Host, u.Query)
		body := fmt.Sprintf(`<!DOCTYPE html><html><head><title>ad</title></head><body class="ad">`+
			`<img src="http://%s/pixel.gif?f=1&r=%06d"><p>Sponsored content</p></body></html>`,
			c.scriptHost(), rng.Intn(1_000_000))
		return htmlResource(body), true
	case strings.HasPrefix(u.Path, "/img/"):
		// Ad creatives on the company's CDN host (cdn1.lockerdome.com):
		// a JPEG signature plus filler.
		return &Resource{Status: 200, ContentType: "image/jpeg", Body: adJPEGBody}, true
	case strings.HasPrefix(u.Path, "/lib/"):
		return &Resource{Status: 200, ContentType: "image/gif", Body: pixelGIFBody}, true
	}
	return &Resource{Status: 404, ContentType: "text/plain", Body: []byte("not found")}, true
}

// RenderPage renders the HTML for page n of a publisher.
func (w *World) RenderPage(pub *Publisher, page int) string {
	plan := w.PlanFor(pub, page)
	rng := w.rng("text", pub.Domain, fmt.Sprint(page))
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html>\n<head>\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", plan.Title)
	b.WriteString(`<link rel="stylesheet" href="/css/site.css">` + "\n")
	fmt.Fprintf(&b, `<script src="http://%s/js/app.js?pg=%d"></script>`+"\n", pub.Domain, page)
	for _, su := range plan.DirectURLs {
		fmt.Fprintf(&b, `<script src="%s"></script>`+"\n", su)
	}
	b.WriteString("</head>\n<body>\n")
	fmt.Fprintf(&b, "<h1>%s</h1>\n", plan.Title)
	fmt.Fprintf(&b, `<form action="/search"><input name="q" placeholder="Search %s"></form>`+"\n", pub.Domain)
	for i := 0; i < 3; i++ {
		fmt.Fprintf(&b, "<p>%s</p>\n", pageSentences[rng.Intn(len(pageSentences))])
	}
	for _, img := range plan.ImagePaths {
		fmt.Fprintf(&b, `<img src="%s" alt="photo">`+"\n", img)
	}
	for _, fr := range plan.IframeURLs {
		fmt.Fprintf(&b, `<iframe src="%s" width="300" height="250"></iframe>`+"\n", fr)
	}
	b.WriteString("<nav>\n")
	for i, l := range plan.LinkPaths {
		fmt.Fprintf(&b, `<a href="%s">link %d</a>`+"\n", l, i)
	}
	b.WriteString("</nav>\n</body>\n</html>\n")
	return b.String()
}

var pageSentences = []string{
	"The committee will meet again next week to review the findings.",
	"Local startups report a surge in interest following the announcement.",
	"Analysts remain divided over the long-term implications.",
	"Readers shared hundreds of comments within the first hour.",
	"A follow-up piece with expanded interviews is planned.",
	"The archive contains material going back more than a decade.",
}

func htmlResource(body string) *Resource {
	return &Resource{Status: 200, ContentType: "text/html; charset=utf-8", Body: []byte(body)}
}

func jsResource(body string) *Resource {
	return &Resource{Status: 200, ContentType: "application/javascript", Body: []byte(body)}
}

// Shared response bodies for static resources, rendered once. Servers
// hand these out by reference; every consumer (wire writes, the
// in-process Fetch plane, the browser) treats resource bodies as
// read-only.
var (
	pixelGIFBody = payload.PixelGIF()
	adJPEGBody   = append([]byte("\xFF\xD8\xFF\xE0\x00\x10JFIF\x00"), []byte(strings.Repeat("ad", 64))...)
)

// queryParam returns the value of key in a raw query string without
// allocating. Like parseQuery, the last occurrence of a key wins.
func queryParam(q, key string) string {
	val := ""
	for len(q) > 0 {
		kv := q
		if i := strings.IndexByte(q, '&'); i >= 0 {
			kv, q = q[:i], q[i+1:]
		} else {
			q = ""
		}
		if kv == "" {
			continue
		}
		k, v := kv, ""
		if i := strings.IndexByte(kv, '='); i >= 0 {
			k, v = kv[:i], kv[i+1:]
		}
		if k == key {
			val = v
		}
	}
	return val
}

func parseQuery(q string) map[string]string {
	out := map[string]string{}
	for _, kv := range strings.Split(q, "&") {
		if kv == "" {
			continue
		}
		if i := strings.IndexByte(kv, '='); i >= 0 {
			out[kv[:i]] = kv[i+1:]
		} else {
			out[kv] = ""
		}
	}
	return out
}

func atoi(s string) int {
	n := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + int(c-'0')
	}
	return n
}
