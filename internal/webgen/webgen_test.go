package webgen

import (
	"strings"
	"testing"

	"repro/internal/script"
	"repro/internal/urlutil"
)

func testWorld(era Era) *World {
	return NewWorld(Config{Seed: 7, NumPublishers: 300, Era: era})
}

func TestWorldDeterminism(t *testing.T) {
	a := testWorld(EraPrePatch)
	b := testWorld(EraPrePatch)
	if len(a.Publishers) != len(b.Publishers) {
		t.Fatal("publisher counts differ")
	}
	for i := range a.Publishers {
		pa, pb := a.Publishers[i], b.Publishers[i]
		if pa.Domain != pb.Domain || pa.Rank != pb.Rank || len(pa.Services) != len(pb.Services) {
			t.Fatalf("publisher %d differs: %+v vs %+v", i, pa, pb)
		}
	}
	// Same page renders identically.
	p := a.Publishers[0]
	if a.RenderPage(p, 0) != b.RenderPage(b.Publishers[0], 0) {
		t.Error("page render not deterministic")
	}
}

func TestDeploymentsStableAcrossEras(t *testing.T) {
	pre := testWorld(EraPrePatch)
	post := testWorld(EraPostPatch)
	for i := range pre.Publishers {
		pa, pb := pre.Publishers[i], post.Publishers[i]
		if pa.Domain != pb.Domain {
			t.Fatalf("publisher order changed across eras")
		}
		if len(pa.Services) != len(pb.Services) {
			t.Fatalf("%s: services differ across eras (%d vs %d)", pa.Domain, len(pa.Services), len(pb.Services))
		}
	}
}

func TestSocketSiteRateRoughlyCalibrated(t *testing.T) {
	w := NewWorld(Config{Seed: 3, NumPublishers: 2000, Era: EraPrePatch})
	socketSites := 0
	for _, p := range w.Publishers {
		has := p.SelfWS
		for _, c := range p.Services {
			if c.InitiatesWS[EraPrePatch] {
				has = true
				break
			}
		}
		if has {
			socketSites++
		}
	}
	rate := float64(socketSites) / float64(len(w.Publishers))
	// The paper reports ~2% of sites with sockets; deployment-level
	// presence should land in a loose band around that (pages roll
	// lazily, so observed crawl rates are lower than deployment rates).
	if rate < 0.015 || rate > 0.12 {
		t.Errorf("socket-capable site rate = %.3f, outside sanity band", rate)
	}
}

func TestNamedPublishersPresent(t *testing.T) {
	w := testWorld(EraPrePatch)
	for _, d := range []string{"espn.com", "slither.io", "acenterforrecovery.com", "rubymonk.com"} {
		p := w.PublisherByDomain(d)
		if p == nil {
			t.Fatalf("named publisher %s missing", d)
		}
		if !p.Named {
			t.Errorf("%s not marked Named", d)
		}
	}
	if !w.PublisherByDomain("slither.io").SelfWS {
		t.Error("slither.io should self-host sockets")
	}
	if !w.PublisherByDomain("acenterforrecovery.com").HasService("intercom.io") {
		t.Error("acenterforrecovery should deploy intercom")
	}
}

func TestPageRenderParsesAndLinks(t *testing.T) {
	w := testWorld(EraPrePatch)
	p := w.PublisherByDomain("espn.com")
	html := w.RenderPage(p, 0)
	if !strings.Contains(html, "app.js?pg=0") {
		t.Error("homepage missing first-party script")
	}
	if !strings.Contains(html, "/page/1") {
		t.Error("homepage missing nav links")
	}
	// espncdn script must be referenced directly or via app.js.
	plan := w.PlanFor(p, 0)
	found := false
	for _, u := range plan.DirectURLs {
		if strings.Contains(u, "espncdn.com") {
			found = true
		}
	}
	for _, op := range plan.AppProgram.Ops {
		if op.Do == script.OpIncludeScript && strings.Contains(op.URL, "espncdn.com") {
			found = true
		}
	}
	if !found {
		t.Error("espncdn script not placed on espn.com")
	}
}

func TestResourceResolution(t *testing.T) {
	w := testWorld(EraPrePatch)
	pub := w.Publishers[0]

	res, ok := w.Get("http://" + pub.Domain + "/")
	if !ok || res.Status != 200 || !strings.Contains(res.ContentType, "text/html") {
		t.Fatalf("homepage: ok=%v res=%+v", ok, res)
	}
	res, ok = w.Get("http://" + pub.Domain + "/js/app.js?pg=0")
	if !ok || res.Status != 200 {
		t.Fatal("app.js not served")
	}
	if prog, err := script.Decode(string(res.Body)); err != nil || prog == nil {
		t.Fatalf("app.js does not carry a program: %v", err)
	}
	res, ok = w.Get("http://" + pub.Domain + "/img/0-0.gif")
	if !ok || res.ContentType != "image/gif" {
		t.Fatal("image not served")
	}
	if _, ok := w.Get("http://unknown-host.example/"); ok {
		t.Error("unknown host resolved")
	}
	res, ok = w.Get("http://" + pub.Domain + "/page/9999")
	if !ok || res.Status != 404 {
		t.Error("out-of-range page should 404")
	}
}

func TestCompanyScriptPrograms(t *testing.T) {
	w := testWorld(EraPrePatch)
	// Find a publisher deploying zopim (self-socket style).
	var pub *Publisher
	for _, p := range w.Publishers {
		if p.HasService("zopim.com") {
			pub = p
			break
		}
	}
	if pub == nil {
		t.Skip("no zopim deployment in this seed")
	}
	c := w.CompanyByDomain("zopim.com")
	sawSocket := false
	for page := 0; page <= pub.NumPages; page++ {
		prog := w.companyProgram(c, pub, page)
		for _, op := range prog.Ops {
			if op.Do == script.OpOpenWebSocket {
				sawSocket = true
				if !strings.Contains(op.URL, "zopim.com") {
					t.Errorf("zopim socket to %q, want self", op.URL)
				}
			}
		}
	}
	if !sawSocket {
		t.Error("zopim never opened a socket across all pages")
	}
}

func TestEraChangesInitiators(t *testing.T) {
	pre := testWorld(EraPrePatch)
	post := testWorld(EraPostPatch)
	dc := pre.CompanyByDomain("doubleclick.net")
	var pub *Publisher
	for _, p := range pre.Publishers {
		if p.HasService("doubleclick.net") {
			pub = p
			break
		}
	}
	if pub == nil {
		t.Skip("no doubleclick deployment in this seed")
	}
	countSockets := func(w *World) int {
		n := 0
		for page := 0; page <= pub.NumPages; page++ {
			for _, op := range w.companyProgram(dc, w.PublisherByDomain(pub.Domain), page).Ops {
				if op.Do == script.OpOpenWebSocket {
					n++
				}
			}
		}
		return n
	}
	if countSockets(pre) == 0 {
		t.Error("doubleclick opens no sockets pre-patch")
	}
	if countSockets(post) != 0 {
		t.Error("doubleclick still opens sockets post-patch")
	}
}

func TestWSEndpointResolution(t *testing.T) {
	w := testWorld(EraPrePatch)
	ep, ok := w.WSEndpointFor("intercom.io", "/ws")
	if !ok || ep.Company == nil || ep.Company.Domain != "intercom.io" {
		t.Fatalf("intercom endpoint: %v %v", ep, ok)
	}
	if _, ok := w.WSEndpointFor("intercom.io", "/bogus"); ok {
		t.Error("bogus path resolved")
	}
	ep, ok = w.WSEndpointFor("slither.io", "/live")
	if !ok || ep.Publisher == nil {
		t.Error("publisher self endpoint not resolved")
	}
	ep, ok = w.WSEndpointFor("feed03-rt.net", "/stream")
	if !ok || ep.Company != nil || ep.Publisher != nil {
		t.Error("feed endpoint not resolved as generic")
	}
}

func TestWSMessagesRespectQuery(t *testing.T) {
	w := testWorld(EraPrePatch)
	ep, _ := w.WSEndpointFor("intercom.io", "/ws")
	if msgs := w.WSMessages(ep, "sid=ab12&n=0"); len(msgs) != 0 {
		t.Errorf("n=0 produced %d messages", len(msgs))
	}
	msgs := w.WSMessages(ep, "sid=ab12&n=3")
	if len(msgs) != 3 {
		t.Errorf("n=3 produced %d messages", len(msgs))
	}
	again := w.WSMessages(ep, "sid=ab12&n=3")
	for i := range msgs {
		if string(msgs[i]) != string(again[i]) {
			t.Error("ws responses not deterministic")
		}
	}
	if msgs := w.WSMessages(ep, "sid=x&n=99"); len(msgs) > 8 {
		t.Errorf("n cap not enforced: %d", len(msgs))
	}
}

func TestGeneratedRuleLists(t *testing.T) {
	w := testWorld(EraPrePatch)
	el := w.EasyListText()
	ep := w.EasyPrivacyText()
	for _, want := range []string{"||doubleclick.net^$third-party", "||33across.com/track/", "||lockerdome.com/track/"} {
		if !strings.Contains(el, want) {
			t.Errorf("EasyList missing %q", want)
		}
	}
	if strings.Contains(el, "||lockerdome.com^") {
		t.Error("EasyList must not block all of lockerdome (its CDN stays reachable)")
	}
	for _, want := range []string{"||facebook.com/track/", "||intercom.io/track/", "||hotjar.com/track/"} {
		if !strings.Contains(ep, want) {
			t.Errorf("EasyPrivacy missing %q", want)
		}
	}
	mit := w.MitigationRulesText()
	if !strings.Contains(mit, "$websocket") {
		t.Error("mitigation rules missing $websocket options")
	}
	cf := w.CloudfrontMap()
	if cf["d10lpsik1i8c69.cloudfront.net"] != "luckyorange.com" {
		t.Errorf("cloudfront map = %v", cf)
	}
}

func TestHostsCoverage(t *testing.T) {
	w := testWorld(EraPrePatch)
	hosts := w.Hosts()
	if len(hosts) < 300 {
		t.Errorf("only %d hosts", len(hosts))
	}
	for _, h := range hosts {
		if !w.KnownHost(h) {
			t.Errorf("host %s from Hosts() not KnownHost", h)
		}
	}
	if w.KnownHost("definitely-not-ours.example") {
		t.Error("unknown host accepted")
	}
	// Registrable-domain lookup: subdomains of known publishers count.
	if !w.KnownHost("cdn.intercom.io") {
		t.Error("company script host unknown")
	}
}

func TestFirstPartySocketOpsInAppProgram(t *testing.T) {
	w := testWorld(EraPrePatch)
	pub := w.PublisherByDomain("acenterforrecovery.com")
	saw := false
	for page := 0; page <= pub.NumPages; page++ {
		for _, op := range w.PlanFor(pub, page).AppProgram.Ops {
			if op.Do == script.OpOpenWebSocket && strings.Contains(op.URL, "intercom.io") {
				saw = true
				u := urlutil.MustParse(op.URL)
				if !u.IsWebSocket() {
					t.Error("socket op URL not ws://")
				}
			}
		}
	}
	if !saw {
		t.Error("first-party intercom socket never opened across pages")
	}
}
