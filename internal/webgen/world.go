package webgen

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/urlutil"
)

// Config parameterizes one synthetic-web instance. A World is a pure
// function of its Config: equal configs yield byte-identical webs.
type Config struct {
	// Seed drives all randomness.
	Seed int64
	// NumPublishers is the number of generic publishers (named
	// publishers from the paper are added on top).
	NumPublishers int
	// Era selects pre- or post-patch company behaviour.
	Era Era
	// CrawlIndex (0-3) perturbs session-level rolls between crawls of
	// the same era, the way two crawls of the real web differ.
	CrawlIndex int
}

// DefaultConfig returns the scale used by tests and examples.
func DefaultConfig() Config {
	return Config{Seed: 20170419, NumPublishers: 400, Era: EraPrePatch}
}

// Publisher is one website in the synthetic Alexa sample.
type Publisher struct {
	// Index is the publisher's position in World.Publishers.
	Index int
	// Domain is the site's registrable domain.
	Domain string
	// Rank is the synthetic Alexa rank (1 to ~1M).
	Rank int
	// Category is the Alexa top-level category.
	Category string
	// NumPages is how many article pages exist beyond the homepage.
	NumPages int
	// Services are the third parties deployed on this site.
	Services []*Company
	// SelfWS marks sites hosting their own first-party WebSocket (the
	// slither.io pattern: non-A&A initiator and receiver).
	SelfWS bool
	// Named marks publishers lifted from the paper's tables.
	Named bool
}

// HasService reports whether the publisher deploys the given company.
func (p *Publisher) HasService(domain string) bool {
	for _, c := range p.Services {
		if c.Domain == domain {
			return true
		}
	}
	return false
}

// World is one generated synthetic web.
type World struct {
	Cfg       Config
	Companies []*Company
	// Publishers is sorted by rank.
	Publishers []*Publisher

	companyByDomain map[string]*Company
	companyByHost   map[string]*Company // script hosts and CDN hosts
	pubByDomain     map[string]*Publisher
	wsReceivers     map[string]*Company // registrable domain -> receiving company (nil entry = generic feed endpoint)
	feedDomains     map[string]bool

	planMu    sync.Mutex
	planCache map[planKey]*PagePlan // guarded by planMu; memoized PlanFor results, treated read-only
}

// planKey identifies one (publisher, page) load plan.
type planKey struct {
	domain string
	page   int
}

// alexaCategories mirrors the 17 Alexa top categories the paper sampled.
var alexaCategories = []string{
	"Arts", "Business", "Computers", "Games", "Health", "Home", "Kids",
	"News", "Recreation", "Reference", "Regional", "Science", "Shopping",
	"Society", "Sports", "Adult", "World",
}

// NewWorld generates the ecosystem for cfg.
func NewWorld(cfg Config) *World {
	w := &World{
		Cfg:             cfg,
		Companies:       AllCompanies(),
		companyByDomain: map[string]*Company{},
		companyByHost:   map[string]*Company{},
		pubByDomain:     map[string]*Publisher{},
		wsReceivers:     map[string]*Company{},
		feedDomains:     map[string]bool{},
		planCache:       map[planKey]*PagePlan{},
	}
	for _, c := range w.Companies {
		w.companyByDomain[c.Domain] = c
		w.companyByHost[c.scriptHost()] = c
		if c.AdCDNHost != "" {
			w.companyByHost[c.AdCDNHost] = c
		}
		if c.AcceptsWS {
			w.wsReceivers[c.Domain] = c
		}
	}
	// Partner-pool endpoints that are not registered companies become
	// generic feed receivers.
	for _, c := range w.Companies {
		for _, d := range c.PartnerPool {
			reg := urlutil.RegistrableDomain(d)
			if _, ok := w.companyByDomain[reg]; !ok {
				w.feedDomains[reg] = true
			}
		}
	}
	w.generatePublishers()
	return w
}

// rng returns a deterministic generator for a namespaced key.
func (w *World) rng(parts ...string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|", w.Cfg.Seed, w.Cfg.CrawlIndex)
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// stableRng is like rng but identical across crawls (deployments persist
// between crawls the way real sites keep their vendors).
func (w *World) stableRng(parts ...string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|stable|", w.Cfg.Seed)
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// namedPublisherSpec seeds the publishers the paper's tables name as
// WebSocket initiators (first-party Intercom users, ESPN's CDN, the
// slither self-socket game).
type namedPublisherSpec struct {
	domain   string
	rank     int
	category string
	services []string
	selfWS   bool
}

func namedPublishers() []namedPublisherSpec {
	return []namedPublisherSpec{
		{"espn.com", 120, "Sports", []string{"espncdn.com", "doubleclick.net", "google-analytics.com", "webspectator.com"}, false},
		{"slither.io", 310, "Games", []string{"google-analytics.com"}, true},
		{"twitchclips.tv", 540, "Games", []string{"h-cdn.com", "doubleclick.net"}, false},
		{"acenterforrecovery.com", 312000, "Health", []string{"intercom.io", "google-analytics.com"}, false},
		{"vatit.com", 87000, "Business", []string{"intercom.io", "google.com"}, false},
		{"plymouthart.org", 423000, "Arts", []string{"intercom.io"}, false},
		{"welchllp.com", 512000, "Business", []string{"intercom.io", "google-analytics.com"}, false},
		{"biozone.com", 234000, "Science", []string{"intercom.io"}, false},
		{"rubymonk.com", 165000, "Computers", []string{"intercom.io", "googleapis.com"}, false},
		{"sportingindex.com", 45000, "Sports", []string{"googleapis.com", "google-analytics.com"}, false},
	}
}

func (w *World) generatePublishers() {
	for i, spec := range namedPublishers() {
		p := &Publisher{
			Index:    i,
			Domain:   spec.domain,
			Rank:     spec.rank,
			Category: spec.category,
			NumPages: 10 + i%8,
			SelfWS:   spec.selfWS,
			Named:    true,
		}
		for _, d := range spec.services {
			if c := w.companyByDomain[d]; c != nil {
				p.Services = append(p.Services, c)
			}
		}
		w.Publishers = append(w.Publishers, p)
	}
	base := len(w.Publishers)
	tlds := []string{"com", "net", "org", "info", "co.uk", "com.au", "io"}
	for i := 0; i < w.Cfg.NumPublishers; i++ {
		rng := w.stableRng("pub", fmt.Sprint(i))
		p := &Publisher{
			Index:    base + i,
			Domain:   fmt.Sprintf("pub%04d.%s", i, tlds[rng.Intn(len(tlds))]),
			Rank:     w.rankFor(i, rng),
			Category: alexaCategories[rng.Intn(len(alexaCategories))],
			NumPages: 8 + rng.Intn(12),
		}
		w.deployServices(p, rng)
		w.Publishers = append(w.Publishers, p)
	}
	sort.Slice(w.Publishers, func(a, b int) bool { return w.Publishers[a].Rank < w.Publishers[b].Rank })
	for i, p := range w.Publishers {
		p.Index = i
		w.pubByDomain[p.Domain] = p
	}
}

// rankFor stratifies ranks the way the paper's sample skews popular:
// 30% in the top 10K, 20% between 10K and 100K, the rest out to 1M.
func (w *World) rankFor(i int, rng *rand.Rand) int {
	switch roll := rng.Float64(); {
	case roll < 0.30:
		return 1 + rng.Intn(10_000)
	case roll < 0.50:
		return 10_000 + rng.Intn(90_000)
	default:
		return 100_000 + rng.Intn(900_000)
	}
}

// socketSiteProb gives the probability that a publisher at the given
// rank is a WebSocket-using site, shaped to Figure 3: most prevalent in
// the top 10K, dropping between 10K and 20K, flat in the long tail.
func socketSiteProb(rank int) float64 {
	switch {
	case rank <= 10_000:
		return 0.042
	case rank <= 20_000:
		return 0.026
	case rank <= 100_000:
		return 0.017
	default:
		return 0.013
	}
}

// deployServices assigns a generic publisher its third-party stack.
func (w *World) deployServices(p *Publisher, rng *rand.Rand) {
	// Every site carries ordinary HTTP A&A and benign third parties
	// (socket initiators arrive only through the profiles below, but
	// passive socket receivers like realtime.co serve HTTP assets here
	// too — that is how they earn label observations).
	w.deployFrom(p, rng, func(c *Company) bool {
		return c.HTTPPresence && !c.InitiatesWS[0] && c.DeployWeight > 0
	}, 2+rng.Intn(5))

	// Figure 3's shape: socket services concentrate on top-ranked
	// publishers.
	if rng.Float64() >= socketSiteProb(p.Rank) {
		// Not a socket site; a small chance of self-hosted websockets
		// remains (internal dashboards, games).
		p.SelfWS = rng.Float64() < 0.0015
		return
	}

	type profile struct {
		weight float64
		pick   func()
	}
	profiles := []profile{
		{0.40, func() { // live chat / comments
			w.deployFrom(p, rng, func(c *Company) bool {
				return (c.Category == CatLiveChat || c.Category == CatComments) && c.DeployWeight > 0
			}, 1)
		}},
		{0.13, func() { // session replay
			w.deployFrom(p, rng, func(c *Company) bool {
				return c.Category == CatSessionReplay && c.DeployWeight > 0
			}, 1)
		}},
		{0.12, func() { // realtime analytics / push widgets
			w.deployFrom(p, rng, func(c *Company) bool {
				return (c.Category == CatAnalytics || c.Category == CatRealtimePush) &&
					c.InitiatesWS[0] && c.DeployWeight > 0
			}, 1)
		}},
		{0.27, func() { // ad-socket stack: many A&A initiators at once
			// Ad-heavy pages really do host dozens of tags; this is
			// where the long tail of unique A&A initiators comes from.
			w.deployFrom(p, rng, func(c *Company) bool {
				return c.AA && c.InitiatesWS[0] && c.DeployWeight > 0 &&
					(c.Category == CatAdExchange || c.Category == CatAdPlatform ||
						c.Category == CatSocialWidget || c.Category == CatCRN)
			}, 8+rng.Intn(12))
		}},
		{0.11, func() { // benign realtime infrastructure
			w.deployFrom(p, rng, func(c *Company) bool {
				return !c.AA && c.InitiatesWS[0] && c.DeployWeight > 0
			}, 1)
			if rng.Float64() < 0.25 {
				p.SelfWS = true
			}
		}},
	}
	// A socket site gets one primary profile, and sometimes a second.
	total := 0.0
	for _, pr := range profiles {
		total += pr.weight
	}
	roll := rng.Float64() * total
	for _, pr := range profiles {
		if roll < pr.weight {
			pr.pick()
			break
		}
		roll -= pr.weight
	}
	if rng.Float64() < 0.30 {
		idx := rng.Intn(len(profiles))
		profiles[idx].pick()
	}
	// Top-ranked ad-heavy sites additionally host realtime ad units.
	if p.Rank <= 10_000 && rng.Float64() < 0.25 {
		w.deployFrom(p, rng, func(c *Company) bool {
			return c.Domain == "webspectator.com" || c.Domain == "lockerdome.com" || c.Domain == "33across.com"
		}, 1)
	}
}

// deployFrom adds up to n companies matching the predicate, weighted by
// DeployWeight, without duplicates.
func (w *World) deployFrom(p *Publisher, rng *rand.Rand, match func(*Company) bool, n int) {
	var pool []*Company
	total := 0.0
	for _, c := range w.Companies {
		if match(c) && !p.HasService(c.Domain) {
			pool = append(pool, c)
			total += c.DeployWeight
		}
	}
	for k := 0; k < n && len(pool) > 0; k++ {
		roll := rng.Float64() * total
		idx := len(pool) - 1
		for i, c := range pool {
			if roll < c.DeployWeight {
				idx = i
				break
			}
			roll -= c.DeployWeight
		}
		chosen := pool[idx]
		p.Services = append(p.Services, chosen)
		total -= chosen.DeployWeight
		pool = append(pool[:idx], pool[idx+1:]...)
	}
}

// PublisherByDomain looks up a publisher.
func (w *World) PublisherByDomain(domain string) *Publisher { return w.pubByDomain[domain] }

// CompanyByDomain looks up a company by registrable domain.
func (w *World) CompanyByDomain(domain string) *Company { return w.companyByDomain[domain] }

// CompanyByHost looks up a company by one of its serving hosts, its
// exact domain, or a registrable-domain fallback.
func (w *World) CompanyByHost(host string) *Company {
	if c, ok := w.companyByHost[host]; ok {
		return c
	}
	if c, ok := w.companyByDomain[host]; ok {
		return c
	}
	return w.companyByDomain[urlutil.RegistrableDomain(host)]
}

// Hosts returns every hostname the world serves, for DNS-override style
// resolution in the browser and server.
func (w *World) Hosts() []string {
	seen := map[string]bool{}
	var out []string
	add := func(h string) {
		if h != "" && !seen[h] {
			seen[h] = true
			out = append(out, h)
		}
	}
	for _, p := range w.Publishers {
		add(p.Domain)
	}
	for _, c := range w.Companies {
		add(c.Domain)
		add(c.scriptHost())
		add(c.AdCDNHost)
	}
	for d := range w.feedDomains {
		add(d)
	}
	sort.Strings(out)
	return out
}

// KnownHost reports whether the world serves the host.
func (w *World) KnownHost(host string) bool {
	if _, ok := w.pubByDomain[host]; ok {
		return true
	}
	if _, ok := w.companyByHost[host]; ok {
		return true
	}
	if _, ok := w.companyByDomain[host]; ok {
		return true
	}
	reg := urlutil.RegistrableDomain(host)
	if _, ok := w.pubByDomain[reg]; ok {
		return true
	}
	if w.companyByDomain[reg] != nil {
		return true
	}
	return w.feedDomains[reg]
}
