// Package webgen generates the synthetic web the crawler measures: a
// deterministic ecosystem of publishers and third-party companies whose
// behaviour profiles are calibrated to the marginals the paper reports,
// so every table and figure reproduces in shape.
//
// The registry below names the companies the paper names (DoubleClick,
// Facebook, 33across, Hotjar, LuckyOrange, TruConversion, Lockerdome,
// Zopim, Intercom, …) and gives each the WebSocket behaviour §4
// attributes to it. A generated long tail of ad-tech domains supplies the
// ~75 unique pre-patch A&A initiators of Table 1 that shrink to ~23
// after the Chrome 58 release.
package webgen

import (
	"repro/internal/payload"
)

// Era distinguishes crawls before and after the Chrome 58 patch
// (April 19, 2017).
type Era int

// Eras.
const (
	EraPrePatch Era = iota
	EraPostPatch
)

// String names the era.
func (e Era) String() string {
	if e == EraPrePatch {
		return "pre-patch"
	}
	return "post-patch"
}

// Category classifies a company's business, mirroring §4.2's taxonomy.
type Category string

// Categories.
const (
	CatAdExchange    Category = "ad-exchange"
	CatAdPlatform    Category = "ad-platform"
	CatAnalytics     Category = "analytics"
	CatSessionReplay Category = "session-replay"
	CatLiveChat      Category = "live-chat"
	CatComments      Category = "comments"
	CatSocialWidget  Category = "social-widget"
	CatRealtimePush  Category = "realtime-push"
	CatCDN           Category = "cdn"
	CatCRN           Category = "content-recommendation"
	CatFeed          Category = "data-feed"
)

// IntRange is an inclusive [Min, Max] integer range sampled per use.
type IntRange struct{ Min, Max int }

// sample draws uniformly from the range using the given roll in [0,1).
func (r IntRange) sample(roll float64) int {
	if r.Max <= r.Min {
		return r.Min
	}
	return r.Min + int(roll*float64(r.Max-r.Min+1))
}

// InitiatorStyle describes who opens a company's sockets.
type InitiatorStyle int

// Initiator styles.
const (
	// InitSelf: the company's own script opens sockets (initiator =
	// company domain). The Zopim/Intercom self-socket pattern.
	InitSelf InitiatorStyle = iota
	// InitFirstParty: the publisher's inline loader snippet opens the
	// socket (initiator = publisher domain). How chat widgets acquire
	// their many benign initiators in Table 3.
	InitFirstParty
	// InitPartner: the company's script opens sockets to domains drawn
	// from its partner pool (the DoubleClick → 33across pattern).
	InitPartner
)

// Company is one third-party service in the ecosystem.
type Company struct {
	// Name is the display name ("DoubleClick").
	Name string
	// Domain is the registrable domain ("doubleclick.net").
	Domain string
	// ScriptHost serves the company's script; defaults to
	// "cdn." + Domain. LuckyOrange-style companies serve from a
	// Cloudfront host instead (see CloudfrontHost).
	ScriptHost string
	// CloudfrontHost, when set, is the opaque CDN host the script is
	// served from; the labeler must map it back to the company the way
	// the authors manually mapped 13 Cloudfront domains (§3.2).
	CloudfrontHost string
	// Category classifies the service.
	Category Category
	// AA marks advertising & analytics companies (ground truth; the
	// labeler must re-derive this from filter lists).
	AA bool
	// EasyList / EasyPrivacy place the company's domain in the
	// generated rule lists. PartialRules lists only the /track and
	// /beacon paths, so the domain earns A&A observations without its
	// widget script being blockable — reproducing why only ~5% of
	// chains into A&A receivers were blockable (§4.2).
	EasyList, EasyPrivacy, PartialRules bool

	// --- initiator behaviour ---

	// InitiatesWS reports, per era, whether the company's deployments
	// open WebSockets at all. Index by Era.
	InitiatesWS [2]bool
	// Style selects who opens the sockets.
	Style InitiatorStyle
	// SocketsPerPage is how many sockets each active page opens.
	SocketsPerPage IntRange
	// PagesWithSockets is the probability a given page of a deploying
	// site runs the socket path (widgets load lazily).
	PagesWithSockets float64
	// PartnerPool lists receiver domains for InitPartner companies.
	PartnerPool []string
	// PartnersPerPage is how many distinct partners each active page
	// dials.
	PartnersPerPage IntRange
	// SendKinds lists the message bundles sent per socket (each inner
	// slice is one message of payload kinds).
	SendKinds [][]string
	// SendBinary sends an undecodable binary frame with this
	// probability.
	SendBinary float64
	// SendNothing leaves the socket silent (no data frames) with this
	// probability — Table 5's 17.8% "No data" row.
	SendNothing float64
	// CookieProb is the chance the handshake carries a Cookie header.
	CookieProb float64

	// --- receiver behaviour ---

	// AcceptsWS marks companies hosting WebSocket endpoints.
	AcceptsWS bool
	// WSPath is the endpoint path (default "/ws").
	WSPath string
	// RespondKinds lists response kinds the endpoint pushes, one
	// message each, after the handshake.
	RespondKinds []string
	// RespondNothing sends no messages with this probability —
	// Table 5's 21.3% received "No data" row.
	RespondNothing float64
	// CollectsFingerprint marks receivers whose endpoints harvest the
	// full fingerprinting bundle from whoever connects (the 33across
	// pattern: 97%% of fingerprinting pairs had it as receiver, §4.3).
	CollectsFingerprint bool
	// AdCDNHost, for Lockerdome-style ad servers, hosts the creatives
	// referenced in adurls responses (deliberately absent from
	// EasyList).
	AdCDNHost string

	// --- deployment ---

	// DeployWeight drives how often the company appears on publishers
	// that match its profile (relative weight within its category
	// group).
	DeployWeight float64
	// HTTPPresence: the company also serves plain HTTP resources
	// (scripts, pixels, beacons) on deploying pages — the HTTP/S
	// comparison column of Table 5 and the 27%-blockable baseline.
	HTTPPresence bool
	// BeaconKinds are the payload kinds POSTed over HTTP beacons.
	BeaconKinds [][]string
}

// scriptHost returns the host the company's script loads from.
func (c *Company) scriptHost() string {
	if c.CloudfrontHost != "" {
		return c.CloudfrontHost
	}
	if c.ScriptHost != "" {
		return c.ScriptHost
	}
	return "cdn." + c.Domain
}

// fingerprint is the 33across-bound bundle.
var fingerprint = payload.FingerprintKinds

// NamedCompanies returns the registry of companies the paper names. The
// slice is freshly built per call so worlds can be mutated independently.
func NamedCompanies() []*Company {
	return []*Company{
		// ---- Major ad platforms: WebSocket initiators pre-patch only.
		// They sent fingerprinting data to 33across (§4.3) and stopped
		// after Chrome 58 (§4.1).
		{
			Name: "DoubleClick", Domain: "doubleclick.net", Category: CatAdExchange,
			AA: true, EasyList: true,
			InitiatesWS: [2]bool{true, false}, Style: InitPartner,
			SocketsPerPage: IntRange{1, 2}, PagesWithSockets: 0.16,
			PartnerPool:     []string{"33across.com", "zopim.com", "adnxs.com", "googlesyndication.com", "pusher.com", "realtime.co", "freshrelevance.com", "lockerdome.com", "addthis.com"},
			PartnersPerPage: IntRange{1, 2},
			SendKinds:       [][]string{{payload.KindUA, payload.KindCookie}},
			SendNothing:     0.1, CookieProb: 0.8, DeployWeight: 3.0, HTTPPresence: true,
			BeaconKinds: [][]string{{payload.KindUA, payload.KindCookie, payload.KindUserID}},
		},
		{
			Name: "Facebook", Domain: "facebook.com", Category: CatSocialWidget,
			// Only Facebook's tracking paths are listed: blocking the
			// whole domain would break embedded content everywhere.
			AA: true, EasyPrivacy: true, PartialRules: true,
			InitiatesWS: [2]bool{true, false}, Style: InitPartner,
			SocketsPerPage: IntRange{1, 3}, PagesWithSockets: 0.18,
			PartnerPool:     facebookPartnerPool(),
			PartnersPerPage: IntRange{1, 3},
			SendKinds:       [][]string{{payload.KindUA, payload.KindCookie}},
			SendNothing:     0.1, CookieProb: 0.8, DeployWeight: 2.8, HTTPPresence: true,
			BeaconKinds: [][]string{{payload.KindUA, payload.KindCookie}},
		},
		{
			Name: "AddThis", Domain: "addthis.com", Category: CatSocialWidget,
			AA: true, EasyPrivacy: true,
			InitiatesWS: [2]bool{true, false}, Style: InitPartner,
			SocketsPerPage: IntRange{1, 1}, PagesWithSockets: 0.2,
			PartnerPool:     []string{"33across.com", "realtime.co", "pusher.com", "intercom.io", "feedjit.com", "freshrelevance.com", "cloudflare.com", "inspectlet.com"},
			PartnersPerPage: IntRange{1, 2},
			SendKinds:       [][]string{{payload.KindUA, payload.KindCookie, payload.KindIP}},
			CookieProb:      0.8, DeployWeight: 1.6, HTTPPresence: true,
			AcceptsWS: true, RespondKinds: []string{payload.RespJSON}, RespondNothing: 0.2,
		},

		// ---- Google properties: persist across the patch (Table 2
		// shows google initiating in both windows).
		{
			Name: "Google", Domain: "google.com", Category: CatAdPlatform,
			AA: true, PartialRules: true, EasyPrivacy: true,
			InitiatesWS: [2]bool{true, true}, Style: InitPartner,
			SocketsPerPage: IntRange{1, 2}, PagesWithSockets: 0.3,
			PartnerPool:     []string{"zopim.com", "33across.com", "googlesyndication.com", "pusher.com", "realtime.co", "smartsupp.com", "cloudflare.com"},
			PartnersPerPage: IntRange{1, 2},
			SendKinds:       [][]string{{payload.KindUA, payload.KindCookie}},
			SendNothing:     0.1, CookieProb: 0.75, DeployWeight: 3.2, HTTPPresence: true,
			BeaconKinds: [][]string{{payload.KindUA, payload.KindCookie, payload.KindLanguage}},
		},
		{
			Name: "Google Syndication", Domain: "googlesyndication.com", Category: CatAdExchange,
			AA: true, EasyList: true,
			InitiatesWS: [2]bool{true, true}, Style: InitPartner,
			SocketsPerPage: IntRange{1, 1}, PagesWithSockets: 0.2,
			PartnerPool:     []string{"33across.com", "adnxs.com", "realtime.co", "cloudflare.com"},
			PartnersPerPage: IntRange{1, 1},
			SendKinds:       [][]string{{payload.KindUA, payload.KindCookie}},
			CookieProb:      0.85, DeployWeight: 2.2, HTTPPresence: true,
			AcceptsWS: true, RespondKinds: []string{payload.RespHTML, payload.RespJSON}, RespondNothing: 0.3,
		},
		{
			Name: "AppNexus", Domain: "adnxs.com", Category: CatAdExchange,
			AA: true, EasyList: true,
			InitiatesWS: [2]bool{true, true}, Style: InitPartner,
			SocketsPerPage: IntRange{1, 1}, PagesWithSockets: 0.2,
			PartnerPool:     []string{"33across.com", "realtime.co", "googlesyndication.com"},
			PartnersPerPage: IntRange{1, 1},
			SendKinds:       [][]string{{payload.KindUA, payload.KindCookie, payload.KindIP, payload.KindUserID}},
			CookieProb:      0.8, DeployWeight: 1.8, HTTPPresence: true,
			AcceptsWS: true, RespondKinds: []string{payload.RespJSON}, RespondNothing: 0.25,
		},
		{
			Name: "YouTube", Domain: "youtube.com", Category: CatSocialWidget,
			AA: true, PartialRules: true, EasyPrivacy: true,
			InitiatesWS: [2]bool{true, true}, Style: InitPartner,
			SocketsPerPage: IntRange{1, 1}, PagesWithSockets: 0.25,
			PartnerPool:     []string{"realtime.co", "pusher.com", "cloudflare.com", "googlesyndication.com", "33across.com"},
			PartnersPerPage: IntRange{1, 2},
			SendKinds:       [][]string{{payload.KindUA, payload.KindCookie}},
			CookieProb:      0.7, DeployWeight: 1.5, HTTPPresence: true,
		},
		{
			Name: "ShareThis", Domain: "sharethis.com", Category: CatSocialWidget,
			AA: true, EasyPrivacy: true,
			InitiatesWS: [2]bool{true, true}, Style: InitPartner,
			SocketsPerPage: IntRange{1, 1}, PagesWithSockets: 0.2,
			PartnerPool:     []string{"33across.com", "pusher.com", "realtime.co", "intercom.io"},
			PartnersPerPage: IntRange{1, 1},
			SendKinds:       [][]string{{payload.KindUA, payload.KindCookie}},
			CookieProb:      0.75, DeployWeight: 1.2, HTTPPresence: true,
		},
		{
			Name: "Twitter", Domain: "twitter.com", Category: CatSocialWidget,
			AA: true, PartialRules: true, EasyPrivacy: true,
			InitiatesWS: [2]bool{true, true}, Style: InitPartner,
			SocketsPerPage: IntRange{1, 1}, PagesWithSockets: 0.15,
			PartnerPool:     []string{"pusher.com", "realtime.co", "33across.com", "cloudflare.com", "intercom.io"},
			PartnersPerPage: IntRange{1, 1},
			SendKinds:       [][]string{{payload.KindUA, payload.KindCookie}},
			CookieProb:      0.8, DeployWeight: 1.2, HTTPPresence: true,
		},

		// ---- The fingerprint harvester (§4.3): 33across receives the
		// fingerprinting bundle from 97% of fingerprinting pairs.
		{
			Name: "33across", Domain: "33across.com", Category: CatAdPlatform,
			// Its tag itself evades the lists (only /track paths are
			// named) — which is exactly why chains into its sockets
			// were rarely blockable (§4.2).
			AA: true, EasyList: true, PartialRules: true,
			InitiatesWS: [2]bool{true, true}, Style: InitSelf,
			SocketsPerPage: IntRange{1, 1}, PagesWithSockets: 0.2,
			SendKinds:  [][]string{{payload.KindUA, payload.KindCookie}},
			CookieProb: 0.85, DeployWeight: 1.6, HTTPPresence: true,
			CollectsFingerprint: true,
			// A thin trickle of fingerprinting also flows over HTTP
			// (Table 5's small HTTP-side Screen/Device/etc. counts).
			BeaconKinds: [][]string{{payload.KindUA, payload.KindCookie}, fingerprint},
			AcceptsWS:   true, RespondKinds: []string{payload.RespJSON, payload.RespJSON, payload.RespJSON, payload.RespBinary}, RespondNothing: 0.25,
		},

		// ---- Lockerdome: serves ad URLs over WebSockets from an
		// unlisted CDN host (§4.3, Figure 4).
		{
			Name: "Lockerdome", Domain: "lockerdome.com", Category: CatCRN,
			// Only Lockerdome's /track API paths are listed: its widget
			// script and cdn1.lockerdome.com creatives stay unblocked,
			// which is exactly how the WRB let it serve ads (§4.3).
			AA: true, EasyList: true, PartialRules: true,
			InitiatesWS: [2]bool{true, true}, Style: InitSelf,
			SocketsPerPage: IntRange{1, 2}, PagesWithSockets: 0.45,
			SendKinds:   [][]string{{payload.KindUA, payload.KindCookie}},
			SendNothing: 0.15, CookieProb: 0.8, DeployWeight: 1.1, HTTPPresence: true,
			AcceptsWS: true, RespondKinds: []string{payload.RespAdURLs, payload.RespHTML},
			AdCDNHost: "cdn1.lockerdome.com",
		},

		// ---- Session replay services: upload the serialized DOM
		// (§4.3). Hotjar also initiates sockets to Intercom (Table 4).
		{
			Name: "Hotjar", Domain: "hotjar.com", Category: CatSessionReplay,
			AA: true, EasyPrivacy: true, PartialRules: true,
			InitiatesWS: [2]bool{true, true}, Style: InitSelf,
			SocketsPerPage: IntRange{1, 2}, PagesWithSockets: 0.35,
			PartnerPool: []string{"intercom.io", "pusher.com", "33across.com", "cloudflare.com"}, PartnersPerPage: IntRange{0, 1},
			SendKinds:  [][]string{{payload.KindUA, payload.KindCookie}, {payload.KindDOM}},
			CookieProb: 0.7, DeployWeight: 2.0, HTTPPresence: true,
			AcceptsWS: true, RespondKinds: []string{payload.RespHTML, payload.RespJSON}, RespondNothing: 0.1,
		},
		{
			Name: "LuckyOrange", Domain: "luckyorange.com", Category: CatSessionReplay,
			AA: true, EasyPrivacy: true, PartialRules: true,
			CloudfrontHost: "d10lpsik1i8c69.cloudfront.net",
			InitiatesWS:    [2]bool{true, true}, Style: InitSelf,
			SocketsPerPage: IntRange{1, 1}, PagesWithSockets: 0.35,
			SendKinds:  [][]string{{payload.KindUA, payload.KindCookie, payload.KindUserID}, {payload.KindDOM}, {payload.KindScroll, payload.KindViewport}},
			CookieProb: 0.85, DeployWeight: 0.9, HTTPPresence: true,
			AcceptsWS: true, RespondKinds: []string{payload.RespHTML}, RespondNothing: 0.15,
		},
		{
			Name: "TruConversion", Domain: "truconversion.com", Category: CatSessionReplay,
			AA: true, EasyPrivacy: true, PartialRules: true,
			InitiatesWS: [2]bool{true, true}, Style: InitSelf,
			SocketsPerPage: IntRange{1, 1}, PagesWithSockets: 0.3,
			SendKinds:  [][]string{{payload.KindUA, payload.KindCookie}, {payload.KindDOM}},
			CookieProb: 0.8, DeployWeight: 0.6, HTTPPresence: true,
			AcceptsWS: true, RespondKinds: []string{payload.RespHTML}, RespondNothing: 0.2,
		},
		{
			Name: "Inspectlet", Domain: "inspectlet.com", Category: CatSessionReplay,
			AA: true, EasyPrivacy: true, PartialRules: true,
			InitiatesWS: [2]bool{true, true}, Style: InitSelf,
			SocketsPerPage: IntRange{1, 2}, PagesWithSockets: 0.3,
			SendKinds:  [][]string{{payload.KindUA, payload.KindCookie, payload.KindUserID}},
			CookieProb: 0.7, DeployWeight: 1.0, HTTPPresence: true,
			AcceptsWS: true, RespondKinds: []string{payload.RespJSON, payload.RespHTML}, RespondNothing: 0.2,
		},
		{
			Name: "SimpleHeatmaps", Domain: "simpleheatmaps.com", Category: CatSessionReplay,
			AA: true, EasyPrivacy: true, PartialRules: true,
			CloudfrontHost: "d3e54v103j8qbb.cloudfront.net",
			InitiatesWS:    [2]bool{true, true}, Style: InitFirstParty,
			SocketsPerPage: IntRange{1, 1}, PagesWithSockets: 0.4,
			SendKinds:  [][]string{{payload.KindUA, payload.KindScroll, payload.KindViewport}},
			CookieProb: 0.5, DeployWeight: 0.3, HTTPPresence: true,
			AcceptsWS: true, RespondKinds: []string{payload.RespJSON}, RespondNothing: 0.4,
		},

		// ---- Live-chat platforms: legitimate WebSocket users (§6 "The
		// Good") with huge self-socket counts (Table 4's last row) and
		// many benign first-party initiators (Table 3).
		{
			Name: "Intercom", Domain: "intercom.io", Category: CatLiveChat,
			AA: true, EasyPrivacy: true, PartialRules: true,
			InitiatesWS: [2]bool{true, true}, Style: InitFirstParty,
			SocketsPerPage: IntRange{1, 2}, PagesWithSockets: 0.6,
			SendKinds:   [][]string{{payload.KindUA}},
			SendNothing: 0.25, CookieProb: 0.65, DeployWeight: 3.5, HTTPPresence: true,
			AcceptsWS: true, RespondKinds: []string{payload.RespHTML, payload.RespHTML, payload.RespHTML, payload.RespJSON}, RespondNothing: 0.15,
		},
		{
			Name: "Zopim", Domain: "zopim.com", Category: CatLiveChat,
			AA: true, EasyPrivacy: true, PartialRules: true,
			InitiatesWS: [2]bool{true, true}, Style: InitSelf,
			SocketsPerPage: IntRange{3, 6}, PagesWithSockets: 0.8,
			SendKinds:   [][]string{{payload.KindUA}},
			SendNothing: 0.45, CookieProb: 0.55, DeployWeight: 2.6, HTTPPresence: true,
			AcceptsWS: true, RespondKinds: []string{payload.RespHTML}, RespondNothing: 0.3,
		},
		{
			Name: "Smartsupp", Domain: "smartsupp.com", Category: CatLiveChat,
			AA: true, EasyPrivacy: true, PartialRules: true,
			InitiatesWS: [2]bool{true, true}, Style: InitFirstParty,
			SocketsPerPage: IntRange{1, 2}, PagesWithSockets: 0.5,
			SendKinds:   [][]string{{payload.KindUA}},
			SendNothing: 0.35, CookieProb: 0.6, DeployWeight: 1.2, HTTPPresence: true,
			AcceptsWS: true, RespondKinds: []string{payload.RespHTML, payload.RespImage}, RespondNothing: 0.3,
		},
		{
			Name: "Velaro", Domain: "velaro.com", Category: CatLiveChat,
			AA: true, EasyPrivacy: true, PartialRules: true,
			InitiatesWS: [2]bool{true, true}, Style: InitFirstParty,
			SocketsPerPage: IntRange{1, 1}, PagesWithSockets: 0.4,
			SendKinds:   [][]string{{payload.KindUA, payload.KindCookie}},
			SendNothing: 0.3, CookieProb: 0.7, DeployWeight: 0.4, HTTPPresence: true,
			AcceptsWS: true, RespondKinds: []string{payload.RespHTML}, RespondNothing: 0.35,
		},
		{
			Name: "ClickDesk", Domain: "clickdesk.com", Category: CatLiveChat,
			AA:          false, // a chat vendor whose resources never match the lists
			InitiatesWS: [2]bool{true, true}, Style: InitPartner,
			SocketsPerPage: IntRange{1, 2}, PagesWithSockets: 0.5,
			PartnerPool: []string{"pusher.com"}, PartnersPerPage: IntRange{1, 1},
			SendKinds:   [][]string{{payload.KindUA}},
			SendNothing: 0.4, CookieProb: 0.4, DeployWeight: 0.7, HTTPPresence: true,
		},
		{
			Name: "GetAmbassador", Domain: "getambassador.com", Category: CatAnalytics,
			AA:          false,
			InitiatesWS: [2]bool{true, true}, Style: InitPartner,
			SocketsPerPage: IntRange{1, 1}, PagesWithSockets: 0.45,
			PartnerPool: []string{"pusher.com"}, PartnersPerPage: IntRange{1, 1},
			SendKinds:   [][]string{{payload.KindUA}},
			SendNothing: 0.35, CookieProb: 0.4, DeployWeight: 0.6, HTTPPresence: true,
		},

		// ---- Realtime/push infrastructure: A&A receivers with mixed
		// initiator populations.
		{
			Name: "Pusher", Domain: "pusher.com", Category: CatRealtimePush,
			AA: true, EasyPrivacy: true, PartialRules: true,
			InitiatesWS: [2]bool{true, true}, Style: InitSelf,
			SocketsPerPage: IntRange{1, 2}, PagesWithSockets: 0.4,
			SendKinds:   [][]string{{payload.KindUA}},
			SendNothing: 0.4, CookieProb: 0.5, DeployWeight: 1.1, HTTPPresence: true,
			AcceptsWS: true, RespondKinds: []string{payload.RespJSON, payload.RespJSON, payload.RespJSON, payload.RespJS}, RespondNothing: 0.25,
		},
		{
			Name: "Realtime", Domain: "realtime.co", Category: CatRealtimePush,
			AA: true, EasyPrivacy: true, PartialRules: true,
			AcceptsWS: true, RespondKinds: []string{payload.RespHTML, payload.RespHTML, payload.RespHTML, payload.RespJSON}, RespondNothing: 0.2,
			DeployWeight: 0.8, HTTPPresence: true,
		},
		{
			Name: "WebSpectator", Domain: "webspectator.com", Category: CatAdPlatform,
			AA: true, EasyList: true, PartialRules: true,
			InitiatesWS: [2]bool{true, true}, Style: InitPartner,
			SocketsPerPage: IntRange{1, 3}, PagesWithSockets: 0.55,
			PartnerPool: []string{"realtime.co"}, PartnersPerPage: IntRange{1, 1},
			SendKinds:  [][]string{{payload.KindUA, payload.KindCookie}},
			CookieProb: 0.8, DeployWeight: 0.9, HTTPPresence: true,
		},
		{
			Name: "Cloudflare", Domain: "cloudflare.com", Category: CatCDN,
			AA: true, EasyPrivacy: true, PartialRules: true,
			AcceptsWS: true, RespondKinds: []string{payload.RespHTML, payload.RespJSON}, RespondNothing: 0.3,
			DeployWeight: 1.4, HTTPPresence: true,
		},
		{
			Name: "Feedjit", Domain: "feedjit.com", Category: CatAnalytics,
			AA: true, EasyPrivacy: true,
			InitiatesWS: [2]bool{true, true}, Style: InitFirstParty,
			SocketsPerPage: IntRange{1, 3}, PagesWithSockets: 0.6,
			SendKinds:  [][]string{{payload.KindUA, payload.KindCookie, payload.KindIP}},
			CookieProb: 0.8, DeployWeight: 0.9, HTTPPresence: true,
			AcceptsWS: true, RespondKinds: []string{payload.RespHTML}, RespondNothing: 0.2,
		},
		{
			Name: "FreshRelevance", Domain: "freshrelevance.com", Category: CatAnalytics,
			AA: true, EasyPrivacy: true,
			InitiatesWS: [2]bool{true, true}, Style: InitSelf,
			SocketsPerPage: IntRange{1, 1}, PagesWithSockets: 0.4,
			SendKinds:  [][]string{{payload.KindUA, payload.KindCookie, payload.KindUserID}},
			CookieProb: 0.8, DeployWeight: 0.5, HTTPPresence: true,
			AcceptsWS: true, RespondKinds: []string{payload.RespJSON}, RespondNothing: 0.25,
		},
		{
			Name: "Disqus", Domain: "disqus.com", Category: CatComments,
			AA: true, EasyPrivacy: true, PartialRules: true,
			InitiatesWS: [2]bool{true, true}, Style: InitSelf,
			SocketsPerPage: IntRange{1, 2}, PagesWithSockets: 0.55,
			SendKinds:   [][]string{{payload.KindUA, payload.KindCookie}},
			SendNothing: 0.3, CookieProb: 0.7, DeployWeight: 1.5, HTTPPresence: true,
			AcceptsWS: true, RespondKinds: []string{payload.RespHTML, payload.RespHTML, payload.RespJSON}, RespondNothing: 0.2,
		},

		// ---- Non-A&A socket users: benign infrastructure whose
		// sockets dilute the A&A fractions to the paper's 60–75%.
		{
			Name: "ESPN CDN", Domain: "espncdn.com", Category: CatCDN,
			AA:          false,
			InitiatesWS: [2]bool{true, true}, Style: InitPartner,
			SocketsPerPage: IntRange{1, 2}, PagesWithSockets: 0.4,
			PartnerPool: feedPartnerPool()[:32], PartnersPerPage: IntRange{2, 4},
			SendKinds:   [][]string{{payload.KindUA}},
			SendNothing: 0.5, CookieProb: 0.3, DeployWeight: 0.0, // deployed only on its named publisher
			HTTPPresence: true,
		},
		{
			Name: "H-CDN", Domain: "h-cdn.com", Category: CatCDN,
			AA:          false,
			InitiatesWS: [2]bool{true, true}, Style: InitPartner,
			SocketsPerPage: IntRange{1, 2}, PagesWithSockets: 0.3,
			PartnerPool: feedPartnerPool()[4:24], PartnersPerPage: IntRange{2, 3},
			SendKinds:   [][]string{{payload.KindUA}},
			SendNothing: 0.5, CookieProb: 0.2, DeployWeight: 0.0,
			HTTPPresence: true,
		},
		{
			Name: "CDN77", Domain: "cdn77.com", Category: CatCDN,
			AA:          false,
			InitiatesWS: [2]bool{true, true}, Style: InitPartner,
			SocketsPerPage: IntRange{1, 2}, PagesWithSockets: 0.5,
			PartnerPool: []string{"smartsupp.com"}, PartnersPerPage: IntRange{1, 1},
			SendKinds:   [][]string{{payload.KindUA}},
			SendNothing: 0.4, CookieProb: 0.3, DeployWeight: 0.5, HTTPPresence: true,
		},
		{
			Name: "Blogger", Domain: "blogger.com", Category: CatSocialWidget,
			AA:          false,
			InitiatesWS: [2]bool{true, true}, Style: InitPartner,
			SocketsPerPage: IntRange{1, 2}, PagesWithSockets: 0.3,
			PartnerPool: []string{"feedjit.com"}, PartnersPerPage: IntRange{1, 1},
			SendKinds:   [][]string{{payload.KindUA, payload.KindCookie}},
			SendNothing: 0.2, CookieProb: 0.6, DeployWeight: 0.7, HTTPPresence: true,
		},
		{
			Name: "Google APIs", Domain: "googleapis.com", Category: CatCDN,
			AA:          false,
			InitiatesWS: [2]bool{true, true}, Style: InitPartner,
			SocketsPerPage: IntRange{1, 2}, PagesWithSockets: 0.22,
			PartnerPool: []string{"sportingindex.com", "firebaseio-rt.net", "gstatic-rt.net"}, PartnersPerPage: IntRange{1, 2},
			SendKinds:   [][]string{{payload.KindUA}},
			SendNothing: 0.4, CookieProb: 0.3, DeployWeight: 1.6, HTTPPresence: true,
		},
	}
}

// facebookPartnerPool gives Facebook's scripts their broad receiver set
// (35 receivers, 11 of them A&A, in Table 2).
func facebookPartnerPool() []string {
	pool := []string{
		// A&A receivers.
		"33across.com", "zopim.com", "intercom.io", "pusher.com",
		"realtime.co", "inspectlet.com", "addthis.com", "hotjar.com",
		"cloudflare.com", "googlesyndication.com", "feedjit.com",
	}
	// Non-A&A infrastructure endpoints.
	for _, d := range feedPartnerPool()[:24] {
		pool = append(pool, d)
	}
	return pool
}
