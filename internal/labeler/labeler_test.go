package labeler

import (
	"testing"

	"repro/internal/devtools"
	"repro/internal/filterlist"
	"repro/internal/inclusion"
)

func testLists() (*filterlist.List, *filterlist.List) {
	easylist := filterlist.Parse("easylist", `
||adnet.example^$third-party
||fullad.example^
`)
	easyprivacy := filterlist.Parse("easyprivacy", `
||partial.example/track/
`)
	return easylist, easyprivacy
}

func TestThresholdRule(t *testing.T) {
	el, ep := testLists()
	l := New(el, ep)

	// adnet: labeled on every observation -> in D'.
	for i := 0; i < 10; i++ {
		l.Observe("cdn.adnet.example", true)
	}
	// partial: 2 A&A of 12 observations (16.7%) -> in D'.
	for i := 0; i < 10; i++ {
		l.Observe("partial.example", false)
	}
	l.Observe("partial.example", true)
	l.Observe("partial.example", true)
	// rare: 1 A&A of 25 (4%) -> out.
	for i := 0; i < 24; i++ {
		l.Observe("rare.example", false)
	}
	l.Observe("rare.example", true)
	// clean: never labeled -> out.
	l.Observe("clean.example", false)

	d := l.Domains()
	if !d["adnet.example"] {
		t.Error("adnet.example missing from D'")
	}
	if !d["partial.example"] {
		t.Error("partial.example (16.7%) missing from D'")
	}
	if d["rare.example"] {
		t.Error("rare.example (4%) wrongly in D'")
	}
	if d["clean.example"] {
		t.Error("clean.example wrongly in D'")
	}

	// Threshold ablation: at 0%, any single A&A observation suffices.
	d0 := l.DomainsAtThreshold(0.0001)
	if !d0["rare.example"] {
		t.Error("rare.example missing at near-zero threshold")
	}
	// At 50%, partial.example falls out.
	d50 := l.DomainsAtThreshold(0.5)
	if d50["partial.example"] {
		t.Error("partial.example present at 50% threshold")
	}
}

func TestSecondLevelAggregation(t *testing.T) {
	el, ep := testLists()
	l := New(el, ep)
	l.Observe("x.adnet.example", true)
	l.Observe("y.adnet.example", true)
	aa, non := l.Counts("adnet.example")
	if aa != 2 || non != 0 {
		t.Errorf("counts = (%d, %d), want (2, 0)", aa, non)
	}
}

func TestCDNMapping(t *testing.T) {
	el, ep := testLists()
	l := New(el, ep)
	l.SetCDNMap(map[string]string{"d10lpsik1i8c69.cloudfront.net": "luckyorange.com"})
	if got := l.MapDomain("d10lpsik1i8c69.cloudfront.net"); got != "luckyorange.com" {
		t.Errorf("MapDomain = %q", got)
	}
	if got := l.MapDomain("other.cloudfront.net"); got != "cloudfront.net" {
		t.Errorf("unmapped CDN host = %q", got)
	}
	l.Observe("d10lpsik1i8c69.cloudfront.net", true)
	if aa, _ := l.Counts("luckyorange.com"); aa != 1 {
		t.Error("mapped observation not credited to company")
	}
}

func buildTree(t *testing.T) *inclusion.Tree {
	t.Helper()
	tr := devtools.NewTrace()
	events := []devtools.Event{
		devtools.FrameNavigated{FrameID: "F1", URL: "http://pub.example/", Initiator: devtools.ParserInitiator("F1")},
		devtools.ScriptParsed{ScriptID: "S1", URL: "http://pub.example/app.js", FrameID: "F1", Initiator: devtools.ParserInitiator("F1")},
		// A&A script request (matches easylist).
		devtools.RequestWillBeSent{RequestID: "R1", URL: "http://cdn.adnet.example/w.js", Type: devtools.ResourceScript, FrameID: "F1", Initiator: devtools.ScriptInitiator("S1"), FirstPartyURL: "http://pub.example/"},
		devtools.ScriptParsed{ScriptID: "S2", URL: "http://cdn.adnet.example/w.js", FrameID: "F1", Initiator: devtools.ScriptInitiator("S1")},
		// Clean request from the A&A script.
		devtools.RequestWillBeSent{RequestID: "R2", URL: "http://benign.example/lib.js", Type: devtools.ResourceScript, FrameID: "F1", Initiator: devtools.ScriptInitiator("S2"), FirstPartyURL: "http://pub.example/"},
		// Opaque CDN host right after the A&A request.
		devtools.RequestWillBeSent{RequestID: "R3", URL: "http://dabc123.cloudfront.net/t.js", Type: devtools.ResourceScript, FrameID: "F1", Initiator: devtools.ScriptInitiator("S1"), FirstPartyURL: "http://pub.example/"},
		// Socket from the A&A script.
		devtools.WebSocketCreated{SocketID: "W1", URL: "ws://partial.example/ws", FrameID: "F1", Initiator: devtools.ScriptInitiator("S2"), FirstPartyURL: "http://pub.example/"},
	}
	for _, ev := range events {
		tr.Record(ev)
	}
	tree, err := inclusion.Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestObserveTree(t *testing.T) {
	el, ep := testLists()
	l := New(el, ep)
	tree := buildTree(t)
	l.ObserveTree(tree)
	if aa, _ := l.Counts("adnet.example"); aa != 1 {
		t.Errorf("adnet a(d) = %d", aa)
	}
	if _, non := l.Counts("benign.example"); non != 1 {
		t.Errorf("benign n(d) = %d", non)
	}
}

func TestCDNAdjacencyCandidates(t *testing.T) {
	el, ep := testLists()
	l := New(el, ep)
	tree := buildTree(t)
	l.ObserveTree(tree)
	// dabc123.cloudfront.net followed the blocked adnet request? It
	// followed a benign one; adjacency is order-sensitive, so build a
	// direct sequence: A&A then CDN.
	l.ObserveTree(tree)
	cands := l.CDNCandidates()
	// R2 (benign) sits between R1 (A&A) and R3 (CDN), so no adjacency
	// here; craft one explicitly.
	tr := devtools.NewTrace()
	tr.Record(devtools.FrameNavigated{FrameID: "F1", URL: "http://pub.example/", Initiator: devtools.ParserInitiator("F1")})
	tr.Record(devtools.RequestWillBeSent{RequestID: "R1", URL: "http://cdn.adnet.example/w.js", Type: devtools.ResourceScript, FrameID: "F1", Initiator: devtools.ParserInitiator("F1"), FirstPartyURL: "http://pub.example/"})
	tr.Record(devtools.RequestWillBeSent{RequestID: "R2", URL: "http://dxyz9.cloudfront.net/t.js", Type: devtools.ResourceScript, FrameID: "F1", Initiator: devtools.ParserInitiator("F1"), FirstPartyURL: "http://pub.example/"})
	tree2, err := inclusion.Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	l.ObserveTree(tree2)
	cands = l.CDNCandidates()
	found := false
	for _, c := range cands {
		if c == "dxyz9.cloudfront.net" {
			found = true
		}
	}
	if !found {
		t.Errorf("adjacent cloudfront host not flagged; candidates = %v", cands)
	}
}

func TestMatchChain(t *testing.T) {
	el, ep := testLists()
	l := New(el, ep)
	tree := buildTree(t)
	ws := tree.Sockets()[0]
	// The chain passes through cdn.adnet.example/w.js, which easylist
	// blocks.
	if !l.MatchChain(ws.Chain(), "pub.example") {
		t.Error("chain through blocked script not flagged")
	}
	// A chain of clean URLs is not flagged.
	reqs := tree.Requests()
	var clean *inclusion.Node
	for _, r := range reqs {
		if r.URL == "http://benign.example/lib.js" {
			clean = r
		}
	}
	// benign.example chain passes through adnet's script too -> blocked.
	if !l.MatchChain(clean.Chain(), "pub.example") {
		t.Error("chain through A&A parent script not flagged")
	}
}

func TestMatchURLs(t *testing.T) {
	el, ep := testLists()
	l := New(el, ep)
	if !l.MatchURLs([]string{"http://pub.example/", "http://cdn.adnet.example/w.js"}, nil, "pub.example") {
		t.Error("MatchURLs missed blocked script")
	}
	if l.MatchURLs([]string{"http://pub.example/", "http://benign.example/x.js"}, nil, "pub.example") {
		t.Error("MatchURLs false positive")
	}
}
