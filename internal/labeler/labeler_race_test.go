package labeler

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/filterlist"
)

// TestLabelerConcurrentObservations is the race audit for the sharded
// labeler, mirroring crawler/stats_race_test.go: many workers fold in
// observations and resolve domains while an observer reads D′ and
// counts in a tight loop and another goroutine re-publishes the CDN
// map. Under -race (the Makefile's race gate) any unsynchronized access
// fails; the final assertions catch lost updates across shards.
func TestLabelerConcurrentObservations(t *testing.T) {
	lists := filterlist.Parse("easylist", "||tracker.example^\n||ads.example^")
	l := New(lists)
	l.SetCDNMap(map[string]string{"d111.cloudfront.net": "tracker.example"})

	const workers = 8
	const perWorker = 500
	domains := []string{
		"tracker.example", "ads.example", "pixel.example", "benign.example",
		"news.example", "shop.example", "stats.co.uk", "media.example",
	}

	stop := make(chan struct{})
	observer := make(chan struct{})
	go func() {
		defer close(observer)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = l.Domains()
			_, _ = l.Counts("tracker.example")
			_ = l.CDNCandidates()
			_ = l.MapDomain("x.tracker.example")
		}
	}()
	// A second writer re-publishes the CDN snapshot concurrently.
	cdnDone := make(chan struct{})
	go func() {
		defer close(cdnDone)
		for i := 0; i < 50; i++ {
			l.SetCDNMap(map[string]string{
				fmt.Sprintf("d%03d.cloudfront.net", i): "tracker.example",
			})
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				d := domains[(i+w)%len(domains)]
				l.Observe("sub."+d, w%2 == 0)
				l.AddObservations(
					map[string]int{d: 1},
					map[string]int{d: 2},
					map[string]int{"d111.cloudfront.net": 1},
				)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-observer
	<-cdnDone

	// Each worker contributed, per iteration: Observe (+1 to aa or non)
	// and AddObservations (+1 aa, +2 non) on the same domain. Totals
	// must balance exactly — lost updates under sharding would show up
	// here.
	var aaTotal, nonTotal int
	for _, d := range domains {
		aa, non := l.Counts(d)
		aaTotal += aa
		nonTotal += non
	}
	obsTotal := workers * perWorker
	wantAA := obsTotal + obsTotal/2    // AddObservations + even workers' Observe
	wantNon := 2*obsTotal + obsTotal/2 // AddObservations + odd workers' Observe
	if aaTotal != wantAA || nonTotal != wantNon {
		t.Errorf("totals aa=%d non=%d, want aa=%d non=%d (lost updates?)",
			aaTotal, nonTotal, wantAA, wantNon)
	}
	if got := l.CDNCandidates(); len(got) != 1 || got[0] != "d111.cloudfront.net" {
		t.Errorf("CDNCandidates = %v", got)
	}
	if l.MapDomain("d111.cloudfront.net") != "tracker.example" {
		t.Error("CDN mapping lost after concurrent SetCDNMap")
	}
}

// TestMapDomainMemoConsistency checks the registrable-domain memo
// returns the same values as the uncached extraction.
func TestMapDomainMemoConsistency(t *testing.T) {
	l := New(filterlist.Parse("easylist", "||ads.example^"))
	hosts := []string{
		"x.doubleclick.net", "y.doubleclick.net", "stats.bbc.co.uk",
		"example.com", "single", "192.168.0.1",
	}
	for _, h := range hosts {
		first := l.MapDomain(h)
		second := l.MapDomain(h) // memoized path
		if first != second {
			t.Errorf("MapDomain(%q) memo mismatch: %q vs %q", h, first, second)
		}
	}
	if l.MapDomain("x.doubleclick.net") != "doubleclick.net" {
		t.Error("registrable domain wrong")
	}
	if l.MapDomain("stats.bbc.co.uk") != "bbc.co.uk" {
		t.Error("multi-label suffix wrong")
	}
}
