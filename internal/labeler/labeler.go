// Package labeler derives the A&A (advertising & analytics) domain set
// D′ the way §3.2 of the paper does: every observed resource is tagged
// A&A or non-A&A by matching it against EasyList and EasyPrivacy, tag
// counts are aggregated per 2nd-level domain, and a domain enters D′
// when a(d) ≥ 0.1 · n(d) — the 10% threshold that filters false
// positives.
//
// It also implements the paper's Cloudfront handling: opaque CDN hosts
// that serve A&A scripts are detected by chain adjacency and mapped to
// their owning company through a manual table.
package labeler

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/devtools"
	"repro/internal/filterlist"
	"repro/internal/inclusion"
	"repro/internal/urlutil"
)

// Labeler accumulates per-domain A&A observations.
type Labeler struct {
	group *filterlist.Group

	mu     sync.Mutex
	aa     map[string]int // a(d)
	non    map[string]int // n(d)
	cdnMap map[string]string

	// cdnCandidates counts how often an opaque CDN host appears
	// adjacent to an A&A-tagged resource in an inclusion chain.
	cdnCandidates map[string]int
}

// New builds a labeler over the given rule lists (the paper uses
// EasyList and EasyPrivacy).
func New(lists ...*filterlist.List) *Labeler {
	return &Labeler{
		group:         filterlist.NewGroup(lists...),
		aa:            map[string]int{},
		non:           map[string]int{},
		cdnMap:        map[string]string{},
		cdnCandidates: map[string]int{},
	}
}

// SetCDNMap installs the manual CDN-host-to-company mapping (the 13
// Cloudfront domains of §3.2).
func (l *Labeler) SetCDNMap(m map[string]string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for k, v := range m {
		l.cdnMap[strings.ToLower(k)] = v
	}
}

// MapDomain resolves a host to the 2nd-level domain used for counting,
// applying the CDN mapping first.
func (l *Labeler) MapDomain(host string) string {
	l.mu.Lock()
	mapped, ok := l.cdnMap[strings.ToLower(host)]
	l.mu.Unlock()
	if ok {
		return mapped
	}
	return urlutil.RegistrableDomain(host)
}

// opaqueCDNSuffixes are shared-CDN suffixes whose subdomains carry no
// company identity of their own.
var opaqueCDNSuffixes = []string{".cloudfront.net"}

// isOpaqueCDNHost reports whether the host is an anonymous shared-CDN
// host needing manual mapping.
func isOpaqueCDNHost(host string) bool {
	for _, suf := range opaqueCDNSuffixes {
		if strings.HasSuffix(host, suf) && host != suf[1:] {
			return true
		}
	}
	return false
}

// ObserveTree tags every request in a page's inclusion tree and updates
// the per-domain counts. It also records CDN adjacency candidates.
func (l *Labeler) ObserveTree(t *inclusion.Tree) {
	l.AddObservations(l.TagTree(t))
}

// TagTree tags every request in a page's inclusion tree and returns the
// per-domain observation deltas without mutating the labeler: A&A hits,
// non-A&A hits, and opaque-CDN adjacency candidates. The deltas can be
// folded back in with AddObservations, or spooled to disk and summed at
// merge time (internal/dispatch uses this for checkpoint/resume).
func (l *Labeler) TagTree(t *inclusion.Tree) (aa, non, cdn map[string]int) {
	aa, non, cdn = map[string]int{}, map[string]int{}, map[string]int{}
	pageHost := ""
	if u, err := urlutil.Parse(t.PageURL); err == nil {
		pageHost = u.Host
	}
	var prevDomainAA bool
	var prevHost string
	for _, req := range t.Requests() {
		u, err := urlutil.Parse(req.URL)
		if err != nil {
			continue
		}
		d := l.group.Match(filterlist.Request{URL: u, Type: req.Type, PageHost: pageHost})
		if dom := l.MapDomain(u.Host); dom != "" {
			if d.Blocked {
				aa[dom]++
			} else {
				non[dom]++
			}
		}

		// Cloudfront adjacency: an opaque CDN host immediately before
		// or after an A&A resource in load order is a candidate for
		// manual mapping.
		host := u.Host
		if isOpaqueCDNHost(host) && prevDomainAA {
			cdn[host]++
		}
		if isOpaqueCDNHost(prevHost) && d.Blocked {
			cdn[prevHost]++
		}
		prevDomainAA = d.Blocked
		prevHost = host
	}
	return aa, non, cdn
}

// AddObservations folds observation deltas (as produced by TagTree)
// into the per-domain counts.
func (l *Labeler) AddObservations(aa, non, cdn map[string]int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for d, n := range aa {
		l.aa[d] += n
	}
	for d, n := range non {
		l.non[d] += n
	}
	for h, n := range cdn {
		l.cdnCandidates[h] += n
	}
}

// Observe records one resource observation: host plus whether the
// filter lists tagged it A&A.
func (l *Labeler) Observe(host string, isAA bool) {
	d := l.MapDomain(host)
	if d == "" {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if isAA {
		l.aa[d]++
	} else {
		l.non[d]++
	}
}

// Threshold is the a(d) ≥ Threshold · n(d) cutoff from §3.2.
const Threshold = 0.1

// Domains returns D′: every domain whose A&A observations meet the
// threshold.
func (l *Labeler) Domains() map[string]bool {
	return l.DomainsAtThreshold(Threshold)
}

// DomainsAtThreshold computes D′ under an alternative threshold, for
// the ablation benchmarks.
func (l *Labeler) DomainsAtThreshold(threshold float64) map[string]bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := map[string]bool{}
	for d, a := range l.aa {
		if a == 0 {
			continue
		}
		if float64(a) >= threshold*float64(l.non[d]) {
			out[d] = true
		}
	}
	return out
}

// Counts returns (a(d), n(d)) for a domain.
func (l *Labeler) Counts(domain string) (aa, non int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.aa[domain], l.non[domain]
}

// CDNCandidates lists opaque CDN hosts observed adjacent to A&A
// resources, most frequent first — the list a human (or the world's
// ground-truth map) turns into SetCDNMap input.
func (l *Labeler) CDNCandidates() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	hosts := make([]string, 0, len(l.cdnCandidates))
	for h := range l.cdnCandidates {
		hosts = append(hosts, h)
	}
	sort.Slice(hosts, func(i, j int) bool {
		if l.cdnCandidates[hosts[i]] != l.cdnCandidates[hosts[j]] {
			return l.cdnCandidates[hosts[i]] > l.cdnCandidates[hosts[j]]
		}
		return hosts[i] < hosts[j]
	})
	return hosts
}

// MatchChain reports whether any resource along the chain (script URLs
// and the final node) would have been blocked by the lists — the
// post-hoc analysis of §4.2 (footnote 2 caveats apply there too).
func (l *Labeler) MatchChain(chain []*inclusion.Node, pageHost string) bool {
	for _, n := range chain {
		if n.Kind != inclusion.KindScript && n.Kind != inclusion.KindRequest && n.Kind != inclusion.KindWebSocket {
			continue
		}
		u, err := urlutil.Parse(n.URL)
		if err != nil {
			continue
		}
		typ := n.Type
		if n.Kind == inclusion.KindScript {
			typ = devtools.ResourceScript
		}
		if l.group.Match(filterlist.Request{URL: u, Type: typ, PageHost: pageHost}).Blocked {
			return true
		}
	}
	return false
}

// MatchURLs is MatchChain over bare URL strings with the given types,
// used when only compact records survive (dataset replay).
func (l *Labeler) MatchURLs(urls []string, types []devtools.ResourceType, pageHost string) bool {
	for i, raw := range urls {
		u, err := urlutil.Parse(raw)
		if err != nil {
			continue
		}
		typ := devtools.ResourceScript
		if i < len(types) {
			typ = types[i]
		}
		if l.group.Match(filterlist.Request{URL: u, Type: typ, PageHost: pageHost}).Blocked {
			return true
		}
	}
	return false
}
