// Package labeler derives the A&A (advertising & analytics) domain set
// D′ the way §3.2 of the paper does: every observed resource is tagged
// A&A or non-A&A by matching it against EasyList and EasyPrivacy, tag
// counts are aggregated per 2nd-level domain, and a domain enters D′
// when a(d) ≥ 0.1 · n(d) — the 10% threshold that filters false
// positives.
//
// It also implements the paper's Cloudfront handling: opaque CDN hosts
// that serve A&A scripts are detected by chain adjacency and mapped to
// their owning company through a manual table.
//
// Concurrency: the labeler sits on the per-page hot path of every crawl
// worker, so it avoids a single global lock. The CDN map is an
// immutable copy-on-write snapshot read without locking, registrable-
// domain extraction is memoized in a concurrent map, and the a(d)/n(d)
// observation counts are sharded by domain hash so workers labeling
// different domains never contend. Readers (Domains, Counts,
// CDNCandidates) merge across shards and are unaffected by shard
// layout, so results stay deterministic.
package labeler

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/devtools"
	"repro/internal/filterlist"
	"repro/internal/inclusion"
	"repro/internal/urlutil"
)

// countShardCount is the number of observation shards. 16 comfortably
// exceeds the crawl worker counts the orchestrator runs.
const countShardCount = 16

// countShard holds the per-domain tallies whose domains hash here.
type countShard struct {
	mu  sync.Mutex
	aa  map[string]int // a(d)
	non map[string]int // n(d)
	// cdnCandidates counts how often an opaque CDN host appears
	// adjacent to an A&A-tagged resource in an inclusion chain.
	cdnCandidates map[string]int
}

// Labeler accumulates per-domain A&A observations.
type Labeler struct {
	group *filterlist.Group

	// cdnMap is an immutable snapshot, replaced wholesale by SetCDNMap
	// (copy-on-write) and read lock-free on every MapDomain call.
	cdnMap atomic.Pointer[map[string]string]
	cdnMu  sync.Mutex // serializes SetCDNMap writers

	// domMemo caches RegistrableDomain per host — the extraction is
	// pure, and a crawl resolves the same hosts millions of times.
	domMemo sync.Map // string -> string

	shards [countShardCount]countShard
}

// New builds a labeler over the given rule lists (the paper uses
// EasyList and EasyPrivacy).
func New(lists ...*filterlist.List) *Labeler {
	l := &Labeler{group: filterlist.NewGroup(lists...)}
	for i := range l.shards {
		l.shards[i] = countShard{
			aa:            map[string]int{},
			non:           map[string]int{},
			cdnCandidates: map[string]int{},
		}
	}
	return l
}

// shardFor returns the shard owning a domain's tallies.
func (l *Labeler) shardFor(domain string) *countShard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(domain); i++ {
		h = (h ^ uint64(domain[i])) * 1099511628211
	}
	return &l.shards[h&(countShardCount-1)]
}

// SetCDNMap installs the manual CDN-host-to-company mapping (the 13
// Cloudfront domains of §3.2). The update is copy-on-write: readers
// keep seeing the previous immutable snapshot until the merged one is
// published atomically.
func (l *Labeler) SetCDNMap(m map[string]string) {
	l.cdnMu.Lock()
	defer l.cdnMu.Unlock()
	old := l.cdnMap.Load()
	merged := make(map[string]string, len(m))
	if old != nil {
		for k, v := range *old {
			merged[k] = v
		}
	}
	for k, v := range m {
		merged[strings.ToLower(k)] = v
	}
	l.cdnMap.Store(&merged)
}

// MapDomain resolves a host to the 2nd-level domain used for counting,
// applying the CDN mapping first. Lock-free: the CDN snapshot is
// immutable and the registrable-domain extraction is memoized.
func (l *Labeler) MapDomain(host string) string {
	if m := l.cdnMap.Load(); m != nil {
		if mapped, ok := (*m)[strings.ToLower(host)]; ok {
			return mapped
		}
	}
	if d, ok := l.domMemo.Load(host); ok {
		return d.(string)
	}
	d := urlutil.RegistrableDomain(host)
	l.domMemo.Store(host, d)
	return d
}

// opaqueCDNSuffixes are shared-CDN suffixes whose subdomains carry no
// company identity of their own.
var opaqueCDNSuffixes = []string{".cloudfront.net"}

// isOpaqueCDNHost reports whether the host is an anonymous shared-CDN
// host needing manual mapping.
func isOpaqueCDNHost(host string) bool {
	for _, suf := range opaqueCDNSuffixes {
		if strings.HasSuffix(host, suf) && host != suf[1:] {
			return true
		}
	}
	return false
}

// ObserveTree tags every request in a page's inclusion tree and updates
// the per-domain counts. It also records CDN adjacency candidates.
func (l *Labeler) ObserveTree(t *inclusion.Tree) {
	l.AddObservations(l.TagTree(t))
}

// TagTree tags every request in a page's inclusion tree and returns the
// per-domain observation deltas without mutating the labeler: A&A hits,
// non-A&A hits, and opaque-CDN adjacency candidates. The deltas can be
// folded back in with AddObservations, or spooled to disk and summed at
// merge time (internal/dispatch uses this for checkpoint/resume).
func (l *Labeler) TagTree(t *inclusion.Tree) (aa, non, cdn map[string]int) {
	aa, non, cdn = map[string]int{}, map[string]int{}, map[string]int{}
	pageHost := ""
	if u, err := urlutil.Parse(t.PageURL); err == nil {
		pageHost = u.Host
	}
	var prevDomainAA bool
	var prevHost string
	for _, req := range t.Requests() {
		u, err := urlutil.Parse(req.URL)
		if err != nil {
			continue
		}
		d := l.group.Match(filterlist.Request{URL: u, Type: req.Type, PageHost: pageHost})
		if dom := l.MapDomain(u.Host); dom != "" {
			if d.Blocked {
				aa[dom]++
			} else {
				non[dom]++
			}
		}

		// Cloudfront adjacency: an opaque CDN host immediately before
		// or after an A&A resource in load order is a candidate for
		// manual mapping.
		host := u.Host
		if isOpaqueCDNHost(host) && prevDomainAA {
			cdn[host]++
		}
		if isOpaqueCDNHost(prevHost) && d.Blocked {
			cdn[prevHost]++
		}
		prevDomainAA = d.Blocked
		prevHost = host
	}
	return aa, non, cdn
}

// AddObservations folds observation deltas (as produced by TagTree)
// into the per-domain counts, taking only the shard lock each domain
// hashes to.
func (l *Labeler) AddObservations(aa, non, cdn map[string]int) {
	for d, n := range aa {
		s := l.shardFor(d)
		s.mu.Lock()
		s.aa[d] += n
		s.mu.Unlock()
	}
	for d, n := range non {
		s := l.shardFor(d)
		s.mu.Lock()
		s.non[d] += n
		s.mu.Unlock()
	}
	for h, n := range cdn {
		s := l.shardFor(h)
		s.mu.Lock()
		s.cdnCandidates[h] += n
		s.mu.Unlock()
	}
}

// Observe records one resource observation: host plus whether the
// filter lists tagged it A&A.
func (l *Labeler) Observe(host string, isAA bool) {
	d := l.MapDomain(host)
	if d == "" {
		return
	}
	s := l.shardFor(d)
	s.mu.Lock()
	if isAA {
		s.aa[d]++
	} else {
		s.non[d]++
	}
	s.mu.Unlock()
}

// Threshold is the a(d) ≥ Threshold · n(d) cutoff from §3.2.
const Threshold = 0.1

// Domains returns D′: every domain whose A&A observations meet the
// threshold.
func (l *Labeler) Domains() map[string]bool {
	return l.DomainsAtThreshold(Threshold)
}

// DomainsAtThreshold computes D′ under an alternative threshold, for
// the ablation benchmarks.
func (l *Labeler) DomainsAtThreshold(threshold float64) map[string]bool {
	out := map[string]bool{}
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.Lock()
		for d, a := range s.aa {
			if a == 0 {
				continue
			}
			if float64(a) >= threshold*float64(s.non[d]) {
				out[d] = true
			}
		}
		s.mu.Unlock()
	}
	return out
}

// Counts returns (a(d), n(d)) for a domain.
func (l *Labeler) Counts(domain string) (aa, non int) {
	s := l.shardFor(domain)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.aa[domain], s.non[domain]
}

// CDNCandidates lists opaque CDN hosts observed adjacent to A&A
// resources, most frequent first — the list a human (or the world's
// ground-truth map) turns into SetCDNMap input.
func (l *Labeler) CDNCandidates() []string {
	counts := map[string]int{}
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.Lock()
		for h, n := range s.cdnCandidates {
			counts[h] += n
		}
		s.mu.Unlock()
	}
	hosts := make([]string, 0, len(counts))
	for h := range counts {
		hosts = append(hosts, h)
	}
	sort.Slice(hosts, func(i, j int) bool {
		if counts[hosts[i]] != counts[hosts[j]] {
			return counts[hosts[i]] > counts[hosts[j]]
		}
		return hosts[i] < hosts[j]
	})
	return hosts
}

// MatchChain reports whether any resource along the chain (script URLs
// and the final node) would have been blocked by the lists — the
// post-hoc analysis of §4.2 (footnote 2 caveats apply there too).
func (l *Labeler) MatchChain(chain []*inclusion.Node, pageHost string) bool {
	for _, n := range chain {
		if n.Kind != inclusion.KindScript && n.Kind != inclusion.KindRequest && n.Kind != inclusion.KindWebSocket {
			continue
		}
		u := n.ParsedURL()
		if u == nil {
			continue
		}
		typ := n.Type
		if n.Kind == inclusion.KindScript {
			typ = devtools.ResourceScript
		}
		if l.group.Match(filterlist.Request{URL: u, Type: typ, PageHost: pageHost}).Blocked {
			return true
		}
	}
	return false
}

// MatchURLs is MatchChain over bare URL strings with the given types,
// used when only compact records survive (dataset replay).
func (l *Labeler) MatchURLs(urls []string, types []devtools.ResourceType, pageHost string) bool {
	for i, raw := range urls {
		u, err := urlutil.Parse(raw)
		if err != nil {
			continue
		}
		typ := devtools.ResourceScript
		if i < len(types) {
			typ = types[i]
		}
		if l.group.Match(filterlist.Request{URL: u, Type: typ, PageHost: pageHost}).Blocked {
			return true
		}
	}
	return false
}
