package script

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleProgram() *Program {
	return &Program{Ops: []Op{
		Include("http://adnet.example/ads.js"),
		OpenWS("ws://tracker.example/collect", []MessageSpec{
			{Kinds: []string{"ua", "cookie"}},
			{Kinds: []string{"screen", "viewport", "orientation"}},
		}, 2),
		Image("http://adnet.example/pixel.gif"),
		Beacon("http://stats.example/b", []MessageSpec{{Kinds: []string{"ua"}}}),
		Iframe("http://ads.example/slot.html"),
	}}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := sampleProgram()
	body, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(body, Marker) {
		t.Error("encoded body missing marker prefix")
	}
	if !strings.Contains(body, "use strict") {
		t.Error("camouflage boilerplate missing")
	}
	got, err := Decode(body)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("Decode returned nil for marked body")
	}
	if !reflect.DeepEqual(got, p) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, p)
	}
}

func TestDecodePlainScript(t *testing.T) {
	got, err := Decode("function f(){return 42;} window.onload = f;")
	if err != nil || got != nil {
		t.Errorf("plain script: got (%v, %v), want (nil, nil)", got, err)
	}
}

func TestDecodeCorruptProgram(t *testing.T) {
	cases := []string{
		Marker + "\nvar x = 1;",                                                  // no assignment
		Marker + "\nvar __program = {not json};\n",                               // bad JSON
		Marker + "\nvar __program = {\"ops\":[{\"do\":\"launch_missiles\"}]};\n", // unknown op
	}
	for _, body := range cases {
		if _, err := Decode(body); err == nil {
			t.Errorf("Decode accepted corrupt body %q", body[:40])
		}
	}
}

func TestValidate(t *testing.T) {
	bad := []Program{
		{Ops: []Op{{Do: OpIncludeScript}}},                          // missing URL
		{Ops: []Op{{Do: OpOpenWebSocket, URL: "http://x.example"}}}, // wrong scheme
		{Ops: []Op{{Do: "nonsense", URL: "http://x.example"}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid program", i)
		}
	}
	good := Program{Ops: []Op{OpenWS("wss://x.example/s", nil, 0)}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	p := &Program{Ops: []Op{{Do: "bogus"}}}
	if _, err := p.Encode(); err == nil {
		t.Error("Encode accepted invalid program")
	}
}

func TestConstructors(t *testing.T) {
	if op := Include("u"); op.Do != OpIncludeScript || op.URL != "u" {
		t.Error("Include")
	}
	if op := OpenWS("ws://u/s", nil, 3); op.Do != OpOpenWebSocket || op.Expect != 3 {
		t.Error("OpenWS")
	}
	if op := Image("u"); op.Do != OpLoadImage {
		t.Error("Image")
	}
	if op := Beacon("u", nil); op.Do != OpHTTPBeacon {
		t.Error("Beacon")
	}
	if op := Iframe("u"); op.Do != OpInsertIframe {
		t.Error("Iframe")
	}
}

// TestRoundTripProperty: arbitrary well-formed programs survive
// encode/decode.
func TestRoundTripProperty(t *testing.T) {
	kinds := []string{"ua", "cookie", "ip", "dom", "screen", "language"}
	f := func(n uint8, wsCount uint8, kindSel []uint8) bool {
		p := &Program{}
		for i := 0; i < int(n%6); i++ {
			p.Ops = append(p.Ops, Include("http://s.example/a.js"))
		}
		for i := 0; i < int(wsCount%4); i++ {
			var specs []MessageSpec
			for _, k := range kindSel {
				specs = append(specs, MessageSpec{Kinds: []string{kinds[int(k)%len(kinds)]}})
			}
			p.Ops = append(p.Ops, OpenWS("ws://r.example/collect", specs, int(wsCount)%3))
		}
		body, err := p.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(body)
		if err != nil || got == nil {
			return false
		}
		return reflect.DeepEqual(got, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMustEncodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustEncode of invalid program did not panic")
		}
	}()
	(&Program{Ops: []Op{{Do: "bad"}}}).MustEncode()
}
