// Package script defines the behaviour DSL embedded in the synthetic
// web's JavaScript files.
//
// The paper's inclusion trees only need to know which resource caused
// which request, so instead of a JavaScript VM the synthetic browser
// executes small declarative programs carried inside otherwise ordinary
// .js bodies. Each program is a list of operations — include another
// script, open a WebSocket and exchange messages, load an image, fire an
// XHR beacon, insert an iframe — that reproduce the dynamic inclusion
// chains (publisher script → ad network script → tracker WebSocket) the
// paper attributes.
//
// A program travels as a marker comment plus a JSON literal:
//
//	/* wsrepro-script v1 */
//	var __program = {"ops":[{"do":"open_websocket","url":"ws://..."}]};
//
// so the wire format still looks like JavaScript to the HTTP layer and
// content classifiers.
package script

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Marker identifies script bodies that carry a program.
const Marker = "/* wsrepro-script v1 */"

// Op kinds.
const (
	OpIncludeScript = "include_script"
	OpOpenWebSocket = "open_websocket"
	OpLoadImage     = "load_image"
	OpHTTPBeacon    = "http_beacon"
	OpInsertIframe  = "insert_iframe"
)

// MessageSpec describes one WebSocket message (or HTTP beacon body) the
// executing script sends. Kinds name the data categories from the paper's
// Table 5 ("ua", "cookie", "ip", "userid", "device", "screen", "browser",
// "viewport", "scroll", "orientation", "firstseen", "resolution",
// "language", "dom", "binary"); the browser's payload synthesizer turns
// them into realistic content.
type MessageSpec struct {
	// Kinds lists the data categories bundled into this message.
	Kinds []string `json:"kinds,omitempty"`
	// Binary requests a binary (opcode 2) frame.
	Binary bool `json:"binary,omitempty"`
	// Text carries verbatim content instead of synthesized kinds.
	Text string `json:"text,omitempty"`
}

// Op is one operation of a program.
type Op struct {
	// Do selects the operation kind.
	Do string `json:"do"`
	// URL is the operation's target (script/image/beacon/iframe URL or
	// ws:// endpoint).
	URL string `json:"url,omitempty"`
	// Send lists messages to send after a WebSocket opens (or the body
	// of an http_beacon).
	Send []MessageSpec `json:"send,omitempty"`
	// Expect is the number of server messages to read before closing a
	// WebSocket.
	Expect int `json:"expect,omitempty"`
	// SendCookie asks the browser to attach its cookie for the target
	// domain to the request or handshake.
	SendCookie bool `json:"sendCookie,omitempty"`
}

// Program is an executable script behaviour.
type Program struct {
	Ops []Op `json:"ops"`
}

// Validate checks structural invariants: known op kinds, URLs present
// where required, WebSocket ops targeting ws/wss URLs.
func (p *Program) Validate() error {
	for i, op := range p.Ops {
		switch op.Do {
		case OpIncludeScript, OpLoadImage, OpHTTPBeacon, OpInsertIframe:
			if op.URL == "" {
				return fmt.Errorf("script: op %d (%s): missing url", i, op.Do)
			}
		case OpOpenWebSocket:
			if op.URL == "" {
				return fmt.Errorf("script: op %d (%s): missing url", i, op.Do)
			}
			if !strings.HasPrefix(op.URL, "ws://") && !strings.HasPrefix(op.URL, "wss://") {
				return fmt.Errorf("script: op %d: open_websocket url %q is not ws/wss", i, op.URL)
			}
		default:
			return fmt.Errorf("script: op %d: unknown kind %q", i, op.Do)
		}
	}
	return nil
}

// Encode renders the program as a JavaScript-looking body with some
// camouflage boilerplate so content classifiers see realistic scripts.
func (p *Program) Encode() (string, error) {
	if err := p.Validate(); err != nil {
		return "", err
	}
	data, err := json.Marshal(p)
	if err != nil {
		return "", fmt.Errorf("script: encode: %w", err)
	}
	var b strings.Builder
	b.WriteString(Marker)
	b.WriteString("\n(function(){\"use strict\";\n")
	b.WriteString("var __program = ")
	b.Write(data)
	b.WriteString(";\n__run(__program);\n})();\n")
	return b.String(), nil
}

// MustEncode is Encode, panicking on error; for generator tables.
func (p *Program) MustEncode() string {
	s, err := p.Encode()
	if err != nil {
		panic(err)
	}
	return s
}

// Decode extracts and validates the program from a script body. Bodies
// without the marker yield (nil, nil): they are plain scripts with no
// behaviour, which is not an error.
func Decode(body string) (*Program, error) {
	if !strings.Contains(body, Marker) {
		return nil, nil
	}
	const assign = "var __program = "
	i := strings.Index(body, assign)
	if i < 0 {
		return nil, fmt.Errorf("script: marker present but no program assignment")
	}
	rest := body[i+len(assign):]
	end := strings.Index(rest, ";\n")
	if end < 0 {
		return nil, fmt.Errorf("script: unterminated program literal")
	}
	var p Program
	if err := json.Unmarshal([]byte(rest[:end]), &p); err != nil {
		return nil, fmt.Errorf("script: decode program: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Include returns an include_script op.
func Include(url string) Op { return Op{Do: OpIncludeScript, URL: url} }

// OpenWS returns an open_websocket op.
func OpenWS(url string, send []MessageSpec, expect int) Op {
	return Op{Do: OpOpenWebSocket, URL: url, Send: send, Expect: expect}
}

// Image returns a load_image op.
func Image(url string) Op { return Op{Do: OpLoadImage, URL: url} }

// Beacon returns an http_beacon op.
func Beacon(url string, send []MessageSpec) Op {
	return Op{Do: OpHTTPBeacon, URL: url, Send: send}
}

// Iframe returns an insert_iframe op.
func Iframe(url string) Op { return Op{Do: OpInsertIframe, URL: url} }
